//! Write margin and cell-level write delay.
//!
//! Paper definitions (Section 3.2):
//!
//! * **Write margin (WM)**: headroom between the applied wordline level
//!   and the minimum wordline voltage that flips the cell content,
//!   `WM = V_WL,applied − V_WL,min-flip`. At `V_WL = Vdd` this reduces to
//!   the paper's "difference between Vdd and the minimum WL voltage needed
//!   to flip" [9]; wordline overdrive raises the applied level (WM grows),
//!   a negative bitline lowers the flip voltage (WM also grows) — exactly
//!   the two trends of Fig. 5.
//! * **Cell write delay**: time from the wordline reaching 50 % of `Vdd`
//!   until `Q` and `QB` cross.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use sram_spice::{CrossingEdge, DcSolver, Transient};
use sram_units::{Time, Voltage};

impl CellCharacterizer {
    /// Checks whether a DC write with the wordline at `vwl_test` flips a
    /// cell that stores `Q = 1` (BL driven to `bias.vbl`, BLB at `Vdd`).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn write_flips(&self, bias: &AssistVoltages, vwl_test: Voltage) -> Result<bool, CellError> {
        let (ckt, nodes) = self.cell().write_dc_circuit(bias, self.vdd(), vwl_test);
        let sol = DcSolver::new()
            .nodeset(nodes.q, bias.vddc)
            .nodeset(nodes.qb, bias.vssc)
            .solve(&ckt)?;
        Ok(sol.voltage(nodes.q) < sol.voltage(nodes.qb))
    }

    /// Minimum wordline voltage that flips the cell, by bisection.
    ///
    /// # Errors
    ///
    /// [`CellError::BracketingFailed`] when even `2 × Vdd + |V_BL|` cannot
    /// flip the cell; simulation failures otherwise.
    pub fn wordline_flip_voltage(&self, bias: &AssistVoltages) -> Result<Voltage, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let mut lo = Voltage::ZERO; // never flips with WL off
        let mut hi = self.vdd() * 2.0 + bias.vbl.abs();
        if !self.write_flips(bias, hi)? {
            return Err(CellError::BracketingFailed {
                what: "wordline flip voltage",
            });
        }
        // 1 mV resolution.
        while (hi - lo).millivolts() > 1.0 {
            let mid = lo.lerp(hi, 0.5);
            if self.write_flips(bias, mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(lo.lerp(hi, 0.5))
    }

    /// Write margin: `bias.vwl − wordline_flip_voltage(bias)`.
    ///
    /// Negative values mean the applied wordline level cannot flip the
    /// cell at all.
    ///
    /// # Errors
    ///
    /// Same as [`CellCharacterizer::wordline_flip_voltage`].
    pub fn write_margin(&self, bias: &AssistVoltages) -> Result<Voltage, CellError> {
        Ok(bias.vwl - self.wordline_flip_voltage(bias)?)
    }

    /// Cell-level write delay: transient simulation of a `1 → 0` write.
    /// The wordline steps to `bias.vwl`; the delay runs from the WL
    /// crossing 50 % of `Vdd` to `Q` meeting `QB`.
    ///
    /// # Errors
    ///
    /// [`CellError::MeasurementFailed`] when the cell does not flip within
    /// the simulation window (write failure — expect this when
    /// `write_margin` is negative); simulation failures otherwise.
    pub fn write_delay(&self, bias: &AssistVoltages) -> Result<Time, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let t_start = Time::from_picoseconds(2.0);
        let t_rise = Time::from_picoseconds(0.5);
        let (ckt, nodes) = self
            .cell()
            .write_transient_circuit(bias, self.vdd(), t_start, t_rise);
        let result = Transient::new(Time::from_picoseconds(60.0), Time::from_picoseconds(0.25))
            .with_initial_solver(
                DcSolver::new()
                    .nodeset(nodes.q, bias.vddc)
                    .nodeset(nodes.qb, bias.vssc),
            )
            .run(&ckt)?;
        let trace = result.trace();
        let wl_half = trace
            .crossing(nodes.wl, self.vdd() * 0.5, CrossingEdge::Rising, Time::ZERO)
            .ok_or_else(|| CellError::MeasurementFailed {
                what: "write delay",
                reason: "wordline never reached 50% of Vdd".into(),
            })?;
        let meet = trace
            .meeting_time(nodes.q, nodes.qb, wl_half)
            .ok_or_else(|| CellError::MeasurementFailed {
                what: "write delay",
                reason: "Q never met QB (write failed)".into(),
            })?;
        Ok(meet - wl_half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    fn vdd() -> Voltage {
        Voltage::from_millivolts(450.0)
    }

    fn chr(flavor: VtFlavor) -> CellCharacterizer {
        CellCharacterizer::new(&DeviceLibrary::sevennm(), flavor)
    }

    #[test]
    fn wordline_off_never_flips() {
        let c = chr(VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd());
        assert!(!c.write_flips(&bias, Voltage::ZERO).unwrap());
    }

    #[test]
    fn strong_wordline_flips() {
        let c = chr(VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd());
        assert!(c.write_flips(&bias, Voltage::from_volts(0.9)).unwrap());
    }

    #[test]
    fn flip_voltage_is_between_rails() {
        let c = chr(VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd());
        let v = c.wordline_flip_voltage(&bias).unwrap();
        assert!(v.volts() > 0.05 && v.volts() < 0.9, "flip voltage = {v}");
    }

    #[test]
    fn wl_overdrive_raises_write_margin() {
        let c = chr(VtFlavor::Hvt);
        let base = c.write_margin(&AssistVoltages::nominal(vdd())).unwrap();
        let od = c
            .write_margin(&AssistVoltages::nominal(vdd()).with_vwl(Voltage::from_millivolts(540.0)))
            .unwrap();
        assert!(od > base, "WLOD: {base} -> {od} (paper Fig. 5(a))");
    }

    #[test]
    fn negative_bitline_raises_write_margin() {
        let c = chr(VtFlavor::Hvt);
        let base = c.write_margin(&AssistVoltages::nominal(vdd())).unwrap();
        let nbl = c
            .write_margin(
                &AssistVoltages::nominal(vdd()).with_vbl(Voltage::from_millivolts(-100.0)),
            )
            .unwrap();
        assert!(nbl > base, "negative BL: {base} -> {nbl} (paper Fig. 5(b))");
    }

    #[test]
    fn write_delay_is_picoseconds_and_shrinks_with_wlod() {
        let c = chr(VtFlavor::Hvt);
        let base = c.write_delay(&AssistVoltages::nominal(vdd())).unwrap();
        assert!(
            base.picoseconds() > 0.1 && base.picoseconds() < 50.0,
            "write delay = {base}"
        );
        let od = c
            .write_delay(&AssistVoltages::nominal(vdd()).with_vwl(Voltage::from_millivolts(560.0)))
            .unwrap();
        assert!(od < base, "WLOD should speed the flip: {base} -> {od}");
    }
}
