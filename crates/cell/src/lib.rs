//! 6T SRAM cell characterization on top of the `sram-spice` simulator.
//!
//! The paper's Sections 2–3 characterize the all-single-fin 6T cell —
//! built from LVT or HVT FinFETs — under read/write **assist techniques**:
//!
//! * hold and read static noise margins (HSNM / RSNM) from butterfly
//!   curves via the Seevinck maximum-square method,
//! * write margin (WM) and cell-level write delay,
//! * cell read current `I_read` (and its `b·(V_DDC − V_SSC − Vt)^a`
//!   power-law fit),
//! * cell leakage power under voltage scaling,
//! * Monte Carlo yield analysis over random Vt variation (the `μ − kσ`
//!   constraint the paper sketches as the "accurate way").
//!
//! Everything is *measured by circuit simulation* of the actual 6T
//! netlist, exactly as the paper does with SPICE; the
//! [`CellCharacterization`] look-up tables mirror the paper's "stored in
//! look-up tables" workflow so the array model and the optimizer never
//! re-simulate inside the search loop.
//!
//! # Examples
//!
//! ```no_run
//! use sram_cell::{AssistVoltages, CellCharacterizer};
//! use sram_device::{DeviceLibrary, VtFlavor};
//! use sram_units::Voltage;
//!
//! # fn main() -> Result<(), sram_cell::CellError> {
//! let lib = DeviceLibrary::sevennm();
//! let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
//!
//! // RSNM with Vdd-boost + negative-Gnd assists applied:
//! let bias = AssistVoltages::nominal(lib.nominal_vdd())
//!     .with_vddc(Voltage::from_millivolts(550.0))
//!     .with_vssc(Voltage::from_millivolts(-100.0));
//! let rsnm = chr.read_snm(&bias)?;
//! assert!(rsnm.volts() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assist;
mod butterfly;
mod cell;
mod characterize;
mod error;
mod leakage;
mod lut;
mod montecarlo;
mod ncurve;
mod persist;
mod read;
mod retention;
mod snapshot;
mod write;

pub use assist::{AssistVoltages, ReadAssist, WriteAssist};
pub use butterfly::{butterfly_snm, ButterflyCurves, Vtc};
pub use cell::{CellNodes, Sram6t, VtcHalf, VtcMode};
pub use characterize::CellCharacterizer;
pub use error::CellError;
pub use lut::Lut1d;
pub use montecarlo::{MarginKind, MarginStats, MonteCarloConfig, YieldAnalysis, YieldAnalyzer};
pub use ncurve::NCurve;
pub use read::ReadCurrentFit;
pub use snapshot::{CellCharacterization, CharacterizationGrid};
