//! Data-retention voltage and write energy.
//!
//! * **DRV** — the minimum supply at which the cell still holds data
//!   (hold SNM > 0). The paper's Fig. 2 discussion motivates it: scaling
//!   6T-LVT to 100 mV "is difficult to realize due to the increased
//!   susceptibility to noises and process variations"; DRV is the hard
//!   floor under that statement.
//! * **Cell write energy** — the energy drawn from all cell sources over
//!   a write transient, integrating `v(t)·i(t)` per source. Used by the
//!   array model's `E_write_sram` cross-check.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use sram_spice::Transient;
use sram_units::{Energy, Time, Voltage};

impl CellCharacterizer {
    /// Data-retention voltage: the minimum `Vdd` (to `resolution`)
    /// at which the hold butterfly still has two lobes.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; [`CellError::BracketingFailed`]
    /// when the cell cannot hold data even at the nominal supply.
    pub fn data_retention_voltage(&self, resolution: Voltage) -> Result<Voltage, CellError> {
        let holds = |vdd: Voltage| -> Result<bool, CellError> {
            let chr = self.clone().with_vdd(vdd).with_vtc_points(31);
            match chr.hold_snm(&AssistVoltages::nominal(vdd)) {
                Ok(snm) => Ok(snm > Voltage::from_millivolts(0.1)),
                Err(CellError::MeasurementFailed { .. }) => Ok(false),
                Err(e) => Err(e),
            }
        };
        let mut hi = self.vdd();
        if !holds(hi)? {
            return Err(CellError::BracketingFailed {
                what: "data retention voltage",
            });
        }
        let mut lo = Voltage::from_millivolts(10.0);
        if holds(lo)? {
            return Ok(lo);
        }
        while (hi - lo) > resolution {
            let mid = lo.lerp(hi, 0.5);
            if holds(mid)? {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// Energy drawn from all bias sources over one `1 → 0` write
    /// transient (the wordline pulse plus bitline/rail recharge).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; [`CellError::MeasurementFailed`]
    /// when the write does not complete.
    pub fn write_energy(&self, bias: &AssistVoltages) -> Result<Energy, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let t_start = Time::from_picoseconds(2.0);
        let t_rise = Time::from_picoseconds(0.5);
        let (ckt, nodes) = self
            .cell()
            .write_transient_circuit(bias, self.vdd(), t_start, t_rise);
        let result = Transient::new(Time::from_picoseconds(60.0), Time::from_picoseconds(0.25))
            .with_initial_solver(
                sram_spice::DcSolver::new()
                    .nodeset(nodes.q, bias.vddc)
                    .nodeset(nodes.qb, bias.vssc),
            )
            .run(&ckt)?;
        let trace = result.trace();
        if trace.meeting_time(nodes.q, nodes.qb, t_start).is_none() {
            return Err(CellError::MeasurementFailed {
                what: "write energy",
                reason: "write did not complete within the transient window".into(),
            });
        }

        // Sum delivered energy over every source; the WL source is
        // time-varying (its step waveform), the rest are DC.
        let vdd = self.vdd();
        let wl_wave = sram_spice::Waveform::step(Voltage::ZERO, bias.vwl, t_start, t_rise);
        let mut total = Energy::ZERO;
        for (name, level) in [
            ("VDDC", bias.vddc),
            ("VSSC", bias.vssc),
            ("VBL", bias.vbl),
            ("VBLB", vdd),
        ] {
            let branch = ckt.source_branch(name)?;
            total += trace.delivered_energy(branch, |_| level);
        }
        let wl_branch = ckt.source_branch("VWL")?;
        total += trace.delivered_energy(wl_branch, |t| {
            Voltage::from_volts(wl_wave.value_at(t.seconds()))
        });
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    fn chr(flavor: VtFlavor) -> CellCharacterizer {
        CellCharacterizer::new(&DeviceLibrary::sevennm(), flavor)
    }

    #[test]
    fn drv_is_below_nominal_and_hvt_retains_lower() {
        let res = Voltage::from_millivolts(20.0);
        let lvt = chr(VtFlavor::Lvt).data_retention_voltage(res).unwrap();
        let hvt = chr(VtFlavor::Hvt).data_retention_voltage(res).unwrap();
        assert!(lvt.millivolts() < 450.0);
        assert!(hvt.millivolts() < 450.0);
        // HVT's better ON/OFF ratio retains data at least as deep.
        assert!(
            hvt <= lvt + res,
            "DRV: HVT {hvt} should not exceed LVT {lvt}"
        );
    }

    #[test]
    fn write_energy_is_femtojoule_scale_and_positive() {
        let c = chr(VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(Voltage::from_millivolts(450.0))
            .with_vwl(Voltage::from_millivolts(540.0));
        let e = c.write_energy(&bias).unwrap();
        assert!(e.joules() > 0.0, "write must consume energy, got {e}");
        assert!(e.femtojoules() < 10.0, "implausibly large write energy {e}");
    }

    #[test]
    fn overdriven_write_costs_more_energy() {
        let c = chr(VtFlavor::Hvt);
        let nominal_bias = AssistVoltages::nominal(Voltage::from_millivolts(450.0))
            .with_vwl(Voltage::from_millivolts(500.0));
        let overdriven = AssistVoltages::nominal(Voltage::from_millivolts(450.0))
            .with_vwl(Voltage::from_millivolts(650.0));
        let e_nom = c.write_energy(&nominal_bias).unwrap();
        let e_od = c.write_energy(&overdriven).unwrap();
        assert!(
            e_od > e_nom,
            "WL overdrive energy {e_od} should exceed nominal {e_nom}"
        );
    }
}
