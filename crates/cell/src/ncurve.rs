//! N-curve metrics: the current-domain stability view.
//!
//! The butterfly SNM (paper reference [12]) is the voltage-domain
//! stability metric; the N-curve is its current-domain complement and a
//! standard cross-check in SRAM characterization. With the cell in the
//! read configuration (wordline asserted, bitlines clamped), a probe
//! source sweeps the internal node `Q` and records the current it must
//! inject:
//!
//! * the curve crosses zero three times — the two stable states and the
//!   metastable point;
//! * **SVNM** (static voltage noise margin) = voltage between the first
//!   and second zero crossings;
//! * **SINM** (static current noise margin) = peak injected current
//!   between those crossings — the charge barrier a disturbance must
//!   supply to flip the cell.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use sram_spice::{Circuit, DcSweep, Waveform};
use sram_units::{Current, Voltage};

/// A measured N-curve: injected current versus probed node voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct NCurve {
    points: Vec<(f64, f64)>, // (volts, amps injected into Q)
}

impl NCurve {
    /// The sample points as `(probe voltage, injected current)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (Voltage, Current)> + '_ {
        self.points
            .iter()
            .map(|&(v, i)| (Voltage::from_volts(v), Current::from_amps(i)))
    }

    /// Zero crossings of the curve, in sweep order (linear interpolation).
    #[must_use]
    pub fn zero_crossings(&self) -> Vec<Voltage> {
        let mut out = Vec::new();
        for w in self.points.windows(2) {
            let (v0, i0) = w[0];
            let (v1, i1) = w[1];
            if i0 == 0.0 {
                out.push(Voltage::from_volts(v0));
            } else if i0 * i1 < 0.0 {
                let f = i0 / (i0 - i1);
                out.push(Voltage::from_volts(v0 + (v1 - v0) * f));
            }
        }
        out
    }

    /// Static voltage noise margin: distance between the first two zero
    /// crossings.
    ///
    /// # Errors
    ///
    /// [`CellError::MeasurementFailed`] when fewer than two crossings
    /// exist (the cell is not bistable under this bias).
    pub fn svnm(&self) -> Result<Voltage, CellError> {
        let z = self.zero_crossings();
        if z.len() < 2 {
            return Err(CellError::MeasurementFailed {
                what: "SVNM",
                reason: format!("expected >=2 N-curve zero crossings, found {}", z.len()),
            });
        }
        Ok(z[1] - z[0])
    }

    /// Static current noise margin: peak injected current between the
    /// first two zero crossings.
    ///
    /// # Errors
    ///
    /// Same conditions as [`NCurve::svnm`].
    pub fn sinm(&self) -> Result<Current, CellError> {
        let z = self.zero_crossings();
        if z.len() < 2 {
            return Err(CellError::MeasurementFailed {
                what: "SINM",
                reason: format!("expected >=2 N-curve zero crossings, found {}", z.len()),
            });
        }
        let (lo, hi) = (z[0].volts(), z[1].volts());
        let peak = self
            .points
            .iter()
            .filter(|&&(v, _)| v >= lo && v <= hi)
            .map(|&(_, i)| i)
            .fold(0.0f64, f64::max);
        Ok(Current::from_amps(peak))
    }
}

impl CellCharacterizer {
    /// Measures the read-configuration N-curve by sweeping a probe source
    /// on node `Q` from `V_SSC` to `V_DDC`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn n_curve(&self, bias: &AssistVoltages) -> Result<NCurve, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let (mut ckt, nodes) = self.cell().read_circuit(bias, self.vdd());
        // Probe source pinning Q; its branch current is the injection.
        ckt.vsource("VPROBE", nodes.q, Circuit::GROUND, Waveform::dc(bias.vssc));
        let sweep = DcSweep::new("VPROBE", bias.vssc, bias.vddc, 81);
        let points = sweep.run(&ckt)?;
        let branch = ckt.source_branch("VPROBE")?;
        Ok(NCurve {
            points: points
                .into_iter()
                // Branch current flows *into* the probe's + terminal; the
                // injected current into Q is its negation.
                .map(|p| (p.value.volts(), -p.solution.branch_current(branch).amps()))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    fn nominal() -> AssistVoltages {
        AssistVoltages::nominal(Voltage::from_millivolts(450.0))
    }

    #[test]
    fn n_curve_has_three_zero_crossings() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let curve = chr.n_curve(&nominal()).unwrap();
        let z = curve.zero_crossings();
        assert!(
            z.len() == 3,
            "bistable read cell should cross zero thrice, found {:?}",
            z.iter().map(|v| v.millivolts()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn svnm_and_sinm_are_positive_and_track_rsnm() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(31);
        let base = chr.n_curve(&nominal()).unwrap();
        assert!(base.svnm().unwrap().volts() > 0.0);
        assert!(base.sinm().unwrap().amps() > 0.0);

        // The Vdd-boost assist improves current-domain stability too.
        let boosted = chr
            .n_curve(&nominal().with_vddc(Voltage::from_millivolts(600.0)))
            .unwrap();
        assert!(
            boosted.sinm().unwrap() > base.sinm().unwrap(),
            "boost should raise SINM"
        );
    }

    #[test]
    fn synthetic_curve_crossings() {
        // i(v) = sin-like cubic with zeros at 0.1, 0.2, 0.4.
        let pts: Vec<(f64, f64)> = (0..=50)
            .map(|k| {
                let v = k as f64 / 100.0;
                (v, (v - 0.1) * (v - 0.2) * (v - 0.4))
            })
            .collect();
        let c = NCurve { points: pts };
        let z = c.zero_crossings();
        assert_eq!(z.len(), 3);
        assert!((z[0].volts() - 0.1).abs() < 1e-6);
        assert!((c.svnm().unwrap().volts() - 0.1).abs() < 1e-6);
        assert!(c.sinm().unwrap().amps() > 0.0);
    }

    #[test]
    fn degenerate_curve_reports_failure() {
        let c = NCurve {
            points: vec![(0.0, 1.0), (1.0, 2.0)],
        };
        assert!(c.svnm().is_err());
        assert!(c.sinm().is_err());
    }
}
