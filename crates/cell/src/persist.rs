//! Plain-text persistence for characterization snapshots.
//!
//! Simulated characterization takes seconds to minutes; a snapshot is a
//! few hundred bytes. This module serializes a
//! [`CellCharacterization`] to a simple versioned TSV document (no
//! external format crates needed) so expensive runs can be cached on
//! disk and shipped alongside results.

use crate::{CellCharacterization, CellError, Lut1d};
use sram_device::VtFlavor;
use sram_units::{Power, Voltage};

const FORMAT_TAG: &str = "sram-cell-characterization";
const FORMAT_VERSION: u32 = 1;

impl CellCharacterization {
    /// Serializes the snapshot to the versioned TSV document.
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = format!("{FORMAT_TAG}\tv{FORMAT_VERSION}\n");
        out.push_str(&format!(
            "meta\t{}\t{:.9}\t{:.9}\t{:.9}\t{:.6e}\t{:.9}\t{:.9}\n",
            match self.flavor() {
                VtFlavor::Lvt => "LVT",
                VtFlavor::Hvt => "HVT",
            },
            self.vdd().volts(),
            self.vddc().volts(),
            self.vwl().volts(),
            self.leakage().watts(),
            self.hsnm().volts(),
            self.write_margin().volts(),
        ));
        let dump = |name: &str, lut: &Lut1d, out: &mut String| {
            out.push_str(&format!("lut\t{name}\t{}\n", lut.breakpoints().len()));
            for &(x, y) in lut.breakpoints() {
                out.push_str(&format!("{x:.9}\t{y:.9e}\n"));
            }
        };
        dump("rsnm_vs_vssc", self.rsnm_lut(), &mut out);
        dump("read_current_vs_vssc", self.read_current_lut(), &mut out);
        dump("write_delay_vs_vwl", self.write_delay_lut(), &mut out);
        out
    }

    /// Parses a snapshot from [`CellCharacterization::to_tsv`] output.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MeasurementFailed`] describing the first
    /// structural problem (wrong tag/version, malformed numbers, missing
    /// tables).
    pub fn from_tsv(text: &str) -> Result<Self, CellError> {
        let bad = |reason: String| CellError::MeasurementFailed {
            what: "snapshot parse",
            reason,
        };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty document".into()))?;
        if header != format!("{FORMAT_TAG}\tv{FORMAT_VERSION}") {
            return Err(bad(format!("unrecognized header `{header}`")));
        }
        let meta = lines
            .next()
            .ok_or_else(|| bad("missing meta line".into()))?;
        let f: Vec<&str> = meta.split('\t').collect();
        if f.len() != 8 || f[0] != "meta" {
            return Err(bad(format!("malformed meta line `{meta}`")));
        }
        let flavor = match f[1] {
            "LVT" => VtFlavor::Lvt,
            "HVT" => VtFlavor::Hvt,
            other => return Err(bad(format!("unknown flavor `{other}`"))),
        };
        let num = |s: &str| -> Result<f64, CellError> {
            s.parse::<f64>()
                .map_err(|e| bad(format!("bad number `{s}`: {e}")))
        };
        let (vdd, vddc, vwl) = (num(f[2])?, num(f[3])?, num(f[4])?);
        let (leakage, hsnm, wm) = (num(f[5])?, num(f[6])?, num(f[7])?);

        let mut luts: Vec<(String, Lut1d)> = Vec::new();
        let mut lines = lines.peekable();
        while let Some(line) = lines.next() {
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() != 3 || f[0] != "lut" {
                return Err(bad(format!("expected lut header, got `{line}`")));
            }
            let name = f[1].to_owned();
            let n: usize = f[2]
                .parse()
                .map_err(|e| bad(format!("bad lut length: {e}")))?;
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let row = lines
                    .next()
                    .ok_or_else(|| bad(format!("truncated lut `{name}`")))?;
                let xy: Vec<&str> = row.split('\t').collect();
                if xy.len() != 2 {
                    return Err(bad(format!("malformed lut row `{row}`")));
                }
                points.push((num(xy[0])?, num(xy[1])?));
            }
            luts.push((name, Lut1d::new(points)?));
        }
        let mut take = |name: &str| -> Result<Lut1d, CellError> {
            luts.iter()
                .position(|(n, _)| n == name)
                .map(|i| luts.remove(i).1)
                .ok_or_else(|| bad(format!("missing table `{name}`")))
        };

        Ok(Self::from_parts(
            flavor,
            Voltage::from_volts(vdd),
            Voltage::from_volts(vddc),
            Voltage::from_volts(vwl),
            Power::from_watts(leakage),
            Voltage::from_volts(hsnm),
            take("rsnm_vs_vssc")?,
            take("read_current_vs_vssc")?,
            Voltage::from_volts(wm),
            take("write_delay_vs_vwl")?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly_enough() {
        let original = CellCharacterization::paper_hvt(Voltage::from_millivolts(450.0));
        let text = original.to_tsv();
        let parsed = CellCharacterization::from_tsv(&text).unwrap();
        assert_eq!(parsed.flavor(), original.flavor());
        assert!((parsed.vdd().volts() - original.vdd().volts()).abs() < 1e-9);
        assert!((parsed.leakage().watts() - original.leakage().watts()).abs() < 1e-18);
        for mv in [0.0, -60.0, -120.0, -240.0] {
            let v = Voltage::from_millivolts(mv);
            assert!(
                (parsed.rsnm(v).volts() - original.rsnm(v).volts()).abs() < 1e-8,
                "rsnm mismatch at {v}"
            );
            assert!(
                (parsed.read_current(v).amps() - original.read_current(v).amps()).abs() < 1e-12
            );
        }
        assert!(
            (parsed
                .write_delay(Voltage::from_millivolts(540.0))
                .seconds()
                - original
                    .write_delay(Voltage::from_millivolts(540.0))
                    .seconds())
            .abs()
                < 1e-18
        );
    }

    #[test]
    fn rejects_corrupted_documents() {
        let good = CellCharacterization::paper_lvt(Voltage::from_millivolts(450.0)).to_tsv();
        assert!(CellCharacterization::from_tsv("").is_err());
        assert!(CellCharacterization::from_tsv("wrong\theader\n").is_err());
        let truncated: String = good.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(CellCharacterization::from_tsv(&truncated).is_err());
        let corrupted = good.replace("meta\tLVT", "meta\tXVT");
        assert!(CellCharacterization::from_tsv(&corrupted).is_err());
    }
}
