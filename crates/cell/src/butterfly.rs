//! Butterfly curves and the Seevinck maximum-square SNM.
//!
//! The static noise margin of a cross-coupled cell is the side of the
//! largest square that fits inside a lobe of the butterfly plot formed by
//! the two inverter voltage-transfer curves, one of them mirrored about
//! the `y = x` diagonal (Seevinck, List, Lohstroh — JSSC 1987, the
//! paper's reference [12]).
//!
//! For monotone-decreasing VTCs the largest inscribed square has two
//! binding corners, one on each curve:
//!
//! * **upper lobe** — bottom-left corner `(x₁, y₁)` on the mirrored curve
//!   (`x₁ = g(y₁)`), top-right corner on the forward curve
//!   (`y₁ + s = f(x₁ + s)`);
//! * **lower lobe** — the mirror image: bottom-left corner on the forward
//!   curve (`y₁ = f(x₁)`), top-right on the mirrored curve
//!   (`x₁ + s = g(y₁ + s)`).
//!
//! Each lobe's side `s` is maximized over the free corner coordinate;
//! the cell SNM is the smaller lobe's side.

use crate::CellError;
use sram_units::Voltage;

/// A voltage-transfer curve: monotone samples of `vout` versus `vin`.
#[derive(Debug, Clone, PartialEq)]
pub struct Vtc {
    points: Vec<(f64, f64)>,
}

impl Vtc {
    /// Creates a VTC from `(vin, vout)` samples.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MeasurementFailed`] when fewer than two points
    /// are supplied or the inputs are not strictly increasing.
    pub fn new(points: Vec<(Voltage, Voltage)>) -> Result<Self, CellError> {
        let raw: Vec<(f64, f64)> = points
            .iter()
            .map(|&(x, y)| (x.volts(), y.volts()))
            .collect();
        if raw.len() < 2 {
            return Err(CellError::MeasurementFailed {
                what: "VTC",
                reason: "need at least two samples".into(),
            });
        }
        if !raw.windows(2).all(|w| w[1].0 > w[0].0) {
            return Err(CellError::MeasurementFailed {
                what: "VTC",
                reason: "input samples must be strictly increasing".into(),
            });
        }
        Ok(Self { points: raw })
    }

    /// The sample points as `(vin, vout)` pairs.
    pub fn points(&self) -> impl Iterator<Item = (Voltage, Voltage)> + '_ {
        self.points
            .iter()
            .map(|&(x, y)| (Voltage::from_volts(x), Voltage::from_volts(y)))
    }

    /// Output at `vin` (linear interpolation, clamped at the ends).
    #[must_use]
    pub fn output_at(&self, vin: Voltage) -> Voltage {
        Voltage::from_volts(self.eval(vin.volts()))
    }

    fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        if x >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    fn domain(&self) -> (f64, f64) {
        (self.points[0].0, self.points[self.points.len() - 1].0)
    }
}

/// The two curves of a butterfly plot.
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyCurves {
    /// VTC of inverter 1 (`QB = f(Q)` axes).
    pub forward: Vtc,
    /// VTC of inverter 2 (mirrored about the diagonal when plotted).
    pub mirrored: Vtc,
}

impl ButterflyCurves {
    /// Computes the SNM of the butterfly via the maximum-square method.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MeasurementFailed`] when either lobe has
    /// collapsed (the cell has lost bistability under this bias).
    pub fn snm(&self) -> Result<Voltage, CellError> {
        butterfly_snm(&self.forward, &self.mirrored)
    }
}

/// Largest square side with bottom-left corner `(g(y1), y1)` on curve `g`
/// and top-right corner satisfying `y1 + s = f(x1 + s)`, maximized over
/// `y1`. `f` must be non-increasing for the bisection to be valid.
fn lobe_side<F, G>(f: F, g: G, range: (f64, f64)) -> f64
where
    F: Fn(f64) -> f64,
    G: Fn(f64) -> f64,
{
    const CORNER_SAMPLES: usize = 256;
    const BISECTIONS: usize = 40;
    /// 1 nV noise floor, volts.
    const NOISE_FLOOR_VOLTS: f64 = 1e-9;
    let (lo, hi) = range;
    let span = hi - lo;
    let mut best: f64 = 0.0;
    for k in 0..=CORNER_SAMPLES {
        let y1 = lo + span * k as f64 / CORNER_SAMPLES as f64;
        let x1 = g(y1);
        // h(s) = f(x1 + s) - (y1 + s): strictly decreasing in s; a root
        // exists iff h(0) > 0 (the corner lies strictly below curve f).
        // The 1 nV floor rejects rounding noise on collapsed lobes, where
        // end-clamped interpolation would otherwise sustain a fake square.
        if f(x1) <= y1 + NOISE_FLOOR_VOLTS {
            continue;
        }
        let (mut s_lo, mut s_hi) = (0.0, span);
        if f(x1 + s_hi) - (y1 + s_hi) > 0.0 {
            best = best.max(s_hi);
            continue;
        }
        for _ in 0..BISECTIONS {
            let mid = 0.5 * (s_lo + s_hi);
            if f(x1 + mid) - (y1 + mid) > 0.0 {
                s_lo = mid;
            } else {
                s_hi = mid;
            }
        }
        best = best.max(s_lo);
    }
    best
}

/// Computes the static noise margin from the two inverter VTCs.
///
/// `forward` maps node A to node B; `mirrored` maps node B to node A (it
/// is mirrored about the diagonal internally — pass both curves in their
/// natural input→output orientation).
///
/// # Errors
///
/// Returns [`CellError::MeasurementFailed`] if either lobe has collapsed
/// (non-positive side — the cell is not bistable under this bias).
pub fn butterfly_snm(forward: &Vtc, mirrored: &Vtc) -> Result<Voltage, CellError> {
    let (f_lo, f_hi) = forward.domain();
    let (g_lo, g_hi) = mirrored.domain();
    let range = (f_lo.min(g_lo), f_hi.max(g_hi));

    // Upper lobe: bottom-left corner on the mirrored curve, top-right on
    // the forward curve.
    let upper = lobe_side(|x| forward.eval(x), |y| mirrored.eval(y), range);
    // Lower lobe: the transposed picture (swap the axes): bottom-left
    // corner on the forward curve, top-right on the mirrored curve.
    let lower = lobe_side(|y| mirrored.eval(y), |x| forward.eval(x), range);

    if upper <= 0.0 || lower <= 0.0 {
        return Err(CellError::MeasurementFailed {
            what: "SNM",
            reason: "a butterfly lobe has collapsed (cell not bistable)".into(),
        });
    }
    Ok(Voltage::from_volts(upper.min(lower)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ideal_inverter(vdd: f64, trip: f64, n: usize) -> Vtc {
        // A steep, idealized VTC: vout = vdd for vin < trip, 0 after.
        let pts: Vec<(Voltage, Voltage)> = (0..=n)
            .map(|k| {
                let x = vdd * k as f64 / n as f64;
                let y = vdd / (1.0 + ((x - trip) / 0.005).exp());
                (Voltage::from_volts(x), Voltage::from_volts(y))
            })
            .collect();
        Vtc::new(pts).unwrap()
    }

    #[test]
    fn vtc_rejects_non_monotone_inputs() {
        let err = Vtc::new(vec![
            (Voltage::from_volts(0.2), Voltage::ZERO),
            (Voltage::from_volts(0.1), Voltage::ZERO),
        ])
        .unwrap_err();
        assert!(matches!(err, CellError::MeasurementFailed { .. }));
    }

    #[test]
    fn vtc_interpolates() {
        let vtc = Vtc::new(vec![
            (Voltage::ZERO, Voltage::from_volts(1.0)),
            (Voltage::from_volts(1.0), Voltage::ZERO),
        ])
        .unwrap();
        let mid = vtc.output_at(Voltage::from_volts(0.5));
        assert!((mid.volts() - 0.5).abs() < 1e-12);
        // Clamped outside the range.
        assert_eq!(vtc.output_at(Voltage::from_volts(2.0)).volts(), 0.0);
    }

    #[test]
    fn ideal_symmetric_butterfly_snm_is_half_vdd() {
        // Two ideal inverters tripping at Vdd/2: each lobe is a
        // (Vdd/2)-sided square.
        let vdd = 1.0;
        let inv = ideal_inverter(vdd, 0.5, 400);
        let snm = butterfly_snm(&inv, &inv).unwrap();
        assert!(
            (snm.volts() - 0.5).abs() < 0.05,
            "ideal SNM = {} (expected ~0.5)",
            snm
        );
    }

    #[test]
    fn skewed_trip_points_shrink_the_lobes() {
        // Both inverters tripping at 0.3: lobes are 0.3x0.7 and 0.7x0.3
        // rectangles; max inscribed square side = 0.3.
        let vdd = 1.0;
        let skewed = butterfly_snm(
            &ideal_inverter(vdd, 0.3, 400),
            &ideal_inverter(vdd, 0.3, 400),
        )
        .unwrap();
        assert!(
            (skewed.volts() - 0.3).abs() < 0.03,
            "skewed SNM = {skewed} (expected ~0.3)"
        );
        let centered = butterfly_snm(
            &ideal_inverter(vdd, 0.5, 400),
            &ideal_inverter(vdd, 0.5, 400),
        )
        .unwrap();
        assert!(skewed < centered);
    }

    #[test]
    fn mismatched_trips_take_the_smaller_lobe() {
        // Inverter 1 trips at 0.4, inverter 2 at 0.6: upper lobe square
        // bounded by min(0.4 legs...) — strictly smaller than symmetric.
        let a = ideal_inverter(1.0, 0.4, 400);
        let b = ideal_inverter(1.0, 0.6, 400);
        let snm_ab = butterfly_snm(&a, &b).unwrap();
        let snm_sym = butterfly_snm(
            &ideal_inverter(1.0, 0.5, 400),
            &ideal_inverter(1.0, 0.5, 400),
        )
        .unwrap();
        assert!(snm_ab < snm_sym, "{snm_ab} vs {snm_sym}");
        assert!(snm_ab.volts() > 0.1);
    }

    #[test]
    fn degenerate_curve_reports_collapse() {
        // An "inverter" that is a wire (y = x) produces no lobes.
        let wire = Vtc::new(
            (0..=10)
                .map(|k| {
                    let v = Voltage::from_volts(k as f64 / 10.0);
                    (v, v)
                })
                .collect(),
        )
        .unwrap();
        let err = butterfly_snm(&wire, &wire).unwrap_err();
        assert!(matches!(err, CellError::MeasurementFailed { .. }));
    }

    #[test]
    fn butterfly_curves_struct_round_trips() {
        let inv = ideal_inverter(1.0, 0.5, 200);
        let b = ButterflyCurves {
            forward: inv.clone(),
            mirrored: inv,
        };
        assert!(b.snm().unwrap().volts() > 0.4);
    }

    #[test]
    fn snm_is_symmetric_in_curve_order() {
        let a = ideal_inverter(1.0, 0.42, 300);
        let b = ideal_inverter(1.0, 0.58, 300);
        let ab = butterfly_snm(&a, &b).unwrap();
        let ba = butterfly_snm(&b, &a).unwrap();
        assert!(
            (ab.volts() - ba.volts()).abs() < 2e-3,
            "asymmetry: {ab} vs {ba}"
        );
    }
}
