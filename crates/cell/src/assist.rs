//! Assist-technique configuration.
//!
//! Section 3 of the paper surveys five assist techniques and selects three:
//! **Vdd boost** (`V_DDC > Vdd`, read stability), **negative Gnd**
//! (`V_SSC < 0`, read current), and **wordline overdrive**
//! (`V_WL > Vdd`, write margin). The rejected techniques — wordline
//! underdrive and negative bitline — are still representable here because
//! the Fig. 3(d)/Fig. 5(b) reproductions must sweep them.

use sram_units::Voltage;

/// The four assist rail voltages applied to a 6T cell.
///
/// `vwl` is the wordline *high* level (used when the WL is asserted);
/// `vbl` is the write-driven bitline *low* level (0 without the
/// negative-BL assist).
///
/// # Examples
///
/// ```
/// use sram_cell::AssistVoltages;
/// use sram_units::Voltage;
///
/// let vdd = Voltage::from_millivolts(450.0);
/// let m2 = AssistVoltages::nominal(vdd)
///     .with_vddc(Voltage::from_millivolts(550.0))
///     .with_vssc(Voltage::from_millivolts(-240.0));
/// assert_eq!(m2.read_swing().millivolts(), 790.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssistVoltages {
    /// Cell supply rail `V_DDC` (≥ Vdd when the Vdd-boost assist is on).
    pub vddc: Voltage,
    /// Cell ground rail `V_SSC` (< 0 when the negative-Gnd assist is on).
    pub vssc: Voltage,
    /// Asserted wordline level `V_WL` (> Vdd for WL overdrive, < Vdd for
    /// WL underdrive).
    pub vwl: Voltage,
    /// Write-driven bitline low level `V_BL` (< 0 for the negative-BL
    /// assist).
    pub vbl: Voltage,
}

impl AssistVoltages {
    /// No-assist configuration at supply `vdd`: `V_DDC = Vdd`,
    /// `V_SSC = 0`, `V_WL = Vdd`, `V_BL = 0`.
    #[must_use]
    pub fn nominal(vdd: Voltage) -> Self {
        Self {
            vddc: vdd,
            vssc: Voltage::ZERO,
            vwl: vdd,
            vbl: Voltage::ZERO,
        }
    }

    /// Replaces the cell supply rail (Vdd-boost assist).
    #[must_use]
    pub fn with_vddc(mut self, vddc: Voltage) -> Self {
        self.vddc = vddc;
        self
    }

    /// Replaces the cell ground rail (negative-Gnd assist).
    #[must_use]
    pub fn with_vssc(mut self, vssc: Voltage) -> Self {
        self.vssc = vssc;
        self
    }

    /// Replaces the asserted wordline level (WL over-/under-drive).
    #[must_use]
    pub fn with_vwl(mut self, vwl: Voltage) -> Self {
        self.vwl = vwl;
        self
    }

    /// Replaces the write-driven bitline low level (negative-BL assist).
    #[must_use]
    pub fn with_vbl(mut self, vbl: Voltage) -> Self {
        self.vbl = vbl;
        self
    }

    /// Total voltage across the cell during read, `V_DDC − V_SSC` — the
    /// `V` column of the paper's Table 2 "BL during read" row.
    #[must_use]
    pub fn read_swing(&self) -> Voltage {
        self.vddc - self.vssc
    }

    /// Validates physical plausibility of the rails.
    ///
    /// # Errors
    ///
    /// Returns a description of the violation: the supply rail must exceed
    /// the ground rail, and the asserted WL must be positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.vddc <= self.vssc {
            return Err(format!(
                "V_DDC ({}) must exceed V_SSC ({})",
                self.vddc, self.vssc
            ));
        }
        if self.vwl.volts() <= 0.0 {
            return Err(format!("V_WL ({}) must be positive", self.vwl));
        }
        Ok(())
    }
}

/// Read-assist techniques surveyed in Section 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReadAssist {
    /// No read assist.
    None,
    /// Wordline underdrive: `V_WL < Vdd`. Improves RSNM, *degrades* read
    /// current — rejected by the paper.
    WordlineUnderdrive,
    /// Vdd boost: `V_DDC > Vdd`. Improves RSNM with no read-delay cost —
    /// adopted.
    VddBoost,
    /// Negative Gnd: `V_SSC < 0`. Boosts read current strongly — adopted.
    NegativeGnd,
}

/// Write-assist techniques surveyed in Section 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteAssist {
    /// No write assist.
    None,
    /// Wordline overdrive: `V_WL > Vdd` — adopted (best WM improvement).
    WordlineOverdrive,
    /// Negative bitline: `V_BL < 0` — rejected (WLOD slightly better on
    /// WM; cell write delay is not the bottleneck).
    NegativeBitline,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdd() -> Voltage {
        Voltage::from_millivolts(450.0)
    }

    #[test]
    fn nominal_has_no_assists() {
        let a = AssistVoltages::nominal(vdd());
        assert_eq!(a.vddc, vdd());
        assert_eq!(a.vssc, Voltage::ZERO);
        assert_eq!(a.vwl, vdd());
        assert_eq!(a.vbl, Voltage::ZERO);
        assert_eq!(a.read_swing(), vdd());
        a.validate().unwrap();
    }

    #[test]
    fn builders_compose() {
        let a = AssistVoltages::nominal(vdd())
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vssc(Voltage::from_millivolts(-240.0))
            .with_vwl(Voltage::from_millivolts(540.0))
            .with_vbl(Voltage::from_millivolts(-100.0));
        assert_eq!(a.vddc.millivolts(), 550.0);
        assert_eq!(a.vssc.millivolts(), -240.0);
        assert_eq!(a.vwl.millivolts(), 540.0);
        assert_eq!(a.vbl.millivolts(), -100.0);
        a.validate().unwrap();
    }

    #[test]
    fn validation_rejects_inverted_rails() {
        let a = AssistVoltages::nominal(vdd()).with_vddc(Voltage::from_millivolts(-500.0));
        assert!(a.validate().is_err());
        let b = AssistVoltages::nominal(vdd()).with_vwl(Voltage::ZERO);
        assert!(b.validate().is_err());
    }
}
