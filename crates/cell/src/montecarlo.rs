//! Monte Carlo yield analysis over device variation.
//!
//! The paper derives its `δ = 0.35·Vdd` minimum-margin rule from Monte
//! Carlo analysis, and sketches the "accurate" constraint
//! `min((μ − kσ)_HSNM, (μ − kσ)_RSNM, (μ − kσ)_WM) ≥ 0` with `1 ≤ k ≤ 6`.
//! This module implements that analysis: sample cells with random Vt
//! shifts, characterize each, and report per-margin statistics.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sram_faults::CancelToken;
use sram_units::Voltage;

/// Which margin a statistic describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarginKind {
    /// Hold static noise margin.
    Hsnm,
    /// Read static noise margin.
    Rsnm,
    /// Write margin.
    WriteMargin,
}

impl core::fmt::Display for MarginKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MarginKind::Hsnm => f.write_str("HSNM"),
            MarginKind::Rsnm => f.write_str("RSNM"),
            MarginKind::WriteMargin => f.write_str("WM"),
        }
    }
}

/// Sample statistics of one margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginStats {
    /// Which margin.
    pub kind: MarginKind,
    /// Sample mean.
    pub mean: Voltage,
    /// Sample standard deviation.
    pub sigma: Voltage,
    /// Worst sample observed.
    pub worst: Voltage,
    /// Number of samples (collapsed butterflies count as zero margin).
    pub samples: usize,
}

impl MarginStats {
    /// The statistical margin `μ − kσ` of the paper's accurate constraint.
    #[must_use]
    pub fn mu_minus_k_sigma(&self, k: f64) -> Voltage {
        self.mean - self.sigma * k
    }

    fn from_samples(kind: MarginKind, values: &[f64]) -> Self {
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        Self {
            kind,
            mean: Voltage::from_volts(mean),
            sigma: Voltage::from_volts(var.sqrt()),
            worst: Voltage::from_volts(values.iter().copied().fold(f64::INFINITY, f64::min)),
            samples: values.len(),
        }
    }
}

/// Monte Carlo configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of sampled cells.
    pub samples: usize,
    /// RNG seed (runs are reproducible by construction).
    pub seed: u64,
    /// VTC sweep resolution per sample (lower = faster).
    pub vtc_points: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        Self {
            samples: 200,
            seed: 0x5eed,
            vtc_points: 31,
        }
    }
}

/// Result of a yield analysis: statistics for all three margins.
#[derive(Debug, Clone, PartialEq)]
pub struct YieldAnalysis {
    /// HSNM statistics.
    pub hsnm: MarginStats,
    /// RSNM statistics.
    pub rsnm: MarginStats,
    /// Write-margin statistics.
    pub wm: MarginStats,
}

impl YieldAnalysis {
    /// The paper's accurate yield constraint:
    /// `min over margins of (μ − kσ) ≥ 0`.
    #[must_use]
    pub fn passes(&self, k: f64) -> bool {
        self.worst_statistical_margin(k).volts() >= 0.0
    }

    /// `min((μ−kσ)_HSNM, (μ−kσ)_RSNM, (μ−kσ)_WM)`.
    #[must_use]
    pub fn worst_statistical_margin(&self, k: f64) -> Voltage {
        self.hsnm
            .mu_minus_k_sigma(k)
            .min(self.rsnm.mu_minus_k_sigma(k))
            .min(self.wm.mu_minus_k_sigma(k))
    }
}

/// Runs Monte Carlo yield analyses on a cell under a bias.
#[derive(Debug, Clone)]
pub struct YieldAnalyzer {
    characterizer: CellCharacterizer,
    config: MonteCarloConfig,
}

impl YieldAnalyzer {
    /// Creates an analyzer around a (nominal-cell) characterizer.
    #[must_use]
    pub fn new(characterizer: CellCharacterizer, config: MonteCarloConfig) -> Self {
        Self {
            characterizer,
            config,
        }
    }

    /// Samples `config.samples` cells and characterizes all three margins
    /// of each, applying the assists of `bias` **per operation** exactly
    /// as the array does (paper Fig. 4): hold margins see nominal rails,
    /// the read margin sees the Vdd-boost/negative-Gnd rails, and the
    /// write margin sees the overdriven wordline (and negative bitline)
    /// with nominal rails — applying the read assists during a write
    /// would *strengthen* the cell against flipping and misreport WM.
    ///
    /// Collapsed butterflies (cells that lost bistability under variation)
    /// are recorded as zero margin; write-margin bracketing failures as
    /// zero WM.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors other than margin collapse.
    pub fn run(&self, bias: &AssistVoltages) -> Result<YieldAnalysis, CellError> {
        self.run_with_cancel(bias, &CancelToken::never())
    }

    /// [`YieldAnalyzer::run`] with a cooperative [`CancelToken`], polled
    /// once per sample so a deadline or shutdown aborts the analysis
    /// within one sample's work.
    ///
    /// # Errors
    ///
    /// [`CellError::Cancelled`] when the token fires mid-run, otherwise
    /// the same errors as [`YieldAnalyzer::run`].
    pub fn run_with_cancel(
        &self,
        bias: &AssistVoltages,
        cancel: &CancelToken,
    ) -> Result<YieldAnalysis, CellError> {
        sram_probe::probe_inc!("cell.mc_runs");
        let _span = sram_probe::probe_span!("cell.mc_run_ns");
        let _trace = sram_probe::trace_span!("cell.mc_run");
        let nominal = AssistVoltages::nominal(self.characterizer.vdd());
        let hold_bias = nominal;
        let read_bias = nominal.with_vddc(bias.vddc).with_vssc(bias.vssc);
        let write_bias = nominal.with_vwl(bias.vwl).with_vbl(bias.vbl);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut hsnm = Vec::with_capacity(self.config.samples);
        let mut rsnm = Vec::with_capacity(self.config.samples);
        let mut wm = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            if let Some(reason) = cancel.cancelled() {
                sram_probe::probe_inc!("cell.mc_cancelled");
                return Err(CellError::Cancelled(reason));
            }
            sram_probe::probe_inc!("cell.mc_samples");
            let cell = self.characterizer.cell().with_variation(&mut rng);
            let chr = self
                .characterizer
                .clone()
                .with_cell(cell)
                .with_vtc_points(self.config.vtc_points);
            hsnm.push(margin_or_zero(chr.hold_snm(&hold_bias))?);
            rsnm.push(margin_or_zero(chr.read_snm(&read_bias))?);
            wm.push(match chr.write_margin(&write_bias) {
                Ok(v) => v.volts(),
                Err(CellError::BracketingFailed { .. }) => {
                    sram_probe::probe_inc!("cell.mc_wm_bracketing_failed");
                    0.0
                }
                Err(e) => return Err(e),
            });
        }
        Ok(YieldAnalysis {
            hsnm: MarginStats::from_samples(MarginKind::Hsnm, &hsnm),
            rsnm: MarginStats::from_samples(MarginKind::Rsnm, &rsnm),
            wm: MarginStats::from_samples(MarginKind::WriteMargin, &wm),
        })
    }
}

fn margin_or_zero(result: Result<Voltage, CellError>) -> Result<f64, CellError> {
    match result {
        Ok(v) => Ok(v.volts()),
        Err(CellError::MeasurementFailed { .. }) => {
            // The butterfly collapsed under variation: a zero-margin
            // (failing) sample, not a simulator error.
            sram_probe::probe_inc!("cell.mc_collapsed");
            Ok(0.0)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    #[test]
    fn stats_from_samples() {
        let s = MarginStats::from_samples(MarginKind::Hsnm, &[0.1, 0.2, 0.3]);
        assert!((s.mean.volts() - 0.2).abs() < 1e-12);
        assert!((s.sigma.volts() - 0.1).abs() < 1e-12);
        assert_eq!(s.worst.volts(), 0.1);
        assert_eq!(s.samples, 3);
        assert!((s.mu_minus_k_sigma(1.0).volts() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn yield_analysis_takes_worst_margin() {
        let mk = |kind, mean: f64, sigma: f64| MarginStats {
            kind,
            mean: Voltage::from_volts(mean),
            sigma: Voltage::from_volts(sigma),
            worst: Voltage::from_volts(mean - 2.0 * sigma),
            samples: 10,
        };
        let y = YieldAnalysis {
            hsnm: mk(MarginKind::Hsnm, 0.2, 0.01),
            rsnm: mk(MarginKind::Rsnm, 0.1, 0.03),
            wm: mk(MarginKind::WriteMargin, 0.15, 0.01),
        };
        assert!(y.passes(3.0));
        assert!(!y.passes(4.0)); // RSNM: 0.1 - 4*0.03 < 0
        assert!((y.worst_statistical_margin(1.0).volts() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn small_monte_carlo_runs_end_to_end() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let analyzer = YieldAnalyzer::new(
            chr,
            MonteCarloConfig {
                samples: 8,
                seed: 11,
                vtc_points: 21,
            },
        );
        let bias = AssistVoltages::nominal(Voltage::from_millivolts(450.0))
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vwl(Voltage::from_millivolts(540.0));
        let y = analyzer.run(&bias).unwrap();
        assert_eq!(y.hsnm.samples, 8);
        assert!(y.hsnm.sigma.volts() > 0.0, "variation must spread margins");
        assert!(y.hsnm.mean > y.rsnm.mean, "read disturb persists under MC");
    }

    #[test]
    fn expired_token_cancels_before_the_first_sample() {
        use std::time::{Duration, Instant};
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let analyzer = YieldAnalyzer::new(chr, MonteCarloConfig::default());
        let bias = AssistVoltages::nominal(Voltage::from_millivolts(450.0));
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let started = Instant::now();
        let err = analyzer.run_with_cancel(&bias, &token).unwrap_err();
        assert!(matches!(err, CellError::Cancelled(_)), "{err}");
        assert!(err.to_string().contains("deadline"));
        assert!(!err.is_transient(), "cancellation must not be retried");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "200-sample default run was not short-circuited"
        );
    }

    #[test]
    fn monte_carlo_is_reproducible() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let cfg = MonteCarloConfig {
            samples: 4,
            seed: 99,
            vtc_points: 15,
        };
        let bias = AssistVoltages::nominal(Voltage::from_millivolts(450.0));
        let a = YieldAnalyzer::new(chr.clone(), cfg).run(&bias).unwrap();
        let b = YieldAnalyzer::new(chr, cfg).run(&bias).unwrap();
        assert_eq!(a, b);
    }
}
