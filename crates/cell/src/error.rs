//! Cell-characterization error type.

use core::fmt;
use sram_faults::CancelReason;
use sram_spice::SpiceError;

/// Errors produced during cell characterization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CellError {
    /// An underlying circuit simulation failed.
    Simulation(SpiceError),
    /// A measurement could not be extracted from the simulation result
    /// (e.g. a waveform never crossed the measurement threshold).
    MeasurementFailed {
        /// Which measurement failed.
        what: &'static str,
        /// Why it failed.
        reason: String,
    },
    /// A bias/assist configuration is outside the modeled range.
    InvalidBias(String),
    /// Bisection failed to bracket the quantity being searched for.
    BracketingFailed {
        /// Which search failed.
        what: &'static str,
    },
    /// A cooperative cancellation token fired mid-run (deadline or
    /// shutdown); the work was abandoned, not completed.
    Cancelled(CancelReason),
}

impl CellError {
    /// Whether retrying could plausibly succeed: transient simulation
    /// failures and threshold-miss measurements are retry candidates;
    /// structural/config errors and cancellations are not.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        match self {
            CellError::Simulation(e) => e.is_transient(),
            CellError::MeasurementFailed { .. } => true,
            _ => false,
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Simulation(e) => write!(f, "circuit simulation failed: {e}"),
            CellError::MeasurementFailed { what, reason } => {
                write!(f, "could not measure {what}: {reason}")
            }
            CellError::InvalidBias(msg) => write!(f, "invalid bias configuration: {msg}"),
            CellError::BracketingFailed { what } => {
                write!(f, "bisection could not bracket {what}")
            }
            CellError::Cancelled(reason) => write!(f, "characterization cancelled: {reason}"),
        }
    }
}

impl std::error::Error for CellError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CellError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CellError {
    fn from(e: SpiceError) -> Self {
        CellError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_spice_errors_with_source() {
        let e = CellError::from(SpiceError::SingularMatrix);
        assert!(e.to_string().contains("simulation"));
        assert!(e.source().is_some());
    }

    #[test]
    fn measurement_failure_is_descriptive() {
        let e = CellError::MeasurementFailed {
            what: "write delay",
            reason: "Q never met QB".into(),
        };
        assert!(e.to_string().contains("write delay"));
    }
}
