//! 6T SRAM cell netlist builders.
//!
//! The standard 6T cell (paper Fig. 1(a)): two cross-coupled inverters
//! (pull-up PFETs `PU_L`/`PU_R`, pull-down NFETs `PD_L`/`PD_R`) storing
//! `Q`/`QB`, plus two NFET access transistors (`ACC_L`/`ACC_R`) gating the
//! bitlines. All six transistors are **single-fin** for area efficiency —
//! the design point whose degraded margins the assist circuits must
//! recover.
//!
//! Rail connections follow the paper's Fig. 4/Fig. 6: the inverters sit
//! between the switchable `CVDD` (= `V_DDC`) and `CVSS` (= `V_SSC`) rails;
//! the wordline is driven to `V_WL` when asserted.

use crate::AssistVoltages;
use rand::Rng;
use sram_device::{DeviceLibrary, FinFet, VtFlavor, VtSampler};
use sram_spice::{Circuit, NodeId, Waveform};
use sram_units::{Time, Voltage};

/// Node handles of a built cell circuit.
#[derive(Debug, Clone, Copy)]
pub struct CellNodes {
    /// Storage node `Q` (left).
    pub q: NodeId,
    /// Storage node `QB` (right).
    pub qb: NodeId,
    /// Bitline attached to `Q` through `ACC_L`.
    pub bl: NodeId,
    /// Complement bitline attached to `QB` through `ACC_R`.
    pub blb: NodeId,
    /// Wordline (gates of both access transistors).
    pub wl: NodeId,
    /// Cell supply rail `CVDD`.
    pub cvdd: NodeId,
    /// Cell ground rail `CVSS`.
    pub cvss: NodeId,
}

/// Which half-cell a VTC extraction drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VtcHalf {
    /// Inverter `PU_L`/`PD_L` with access `ACC_L` (output `Q`).
    Left,
    /// Inverter `PU_R`/`PD_R` with access `ACC_R` (output `QB`).
    Right,
}

/// Bias condition of a VTC extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VtcMode {
    /// Hold: wordline low, bitlines precharged (HSNM butterfly).
    Hold,
    /// Read: wordline asserted (at `Vdd` — WL overdrive applies to writes
    /// only), bitlines clamped at the precharge level (RSNM butterfly).
    Read,
}

/// The six transistors of a 6T cell.
///
/// # Examples
///
/// ```
/// use sram_cell::Sram6t;
/// use sram_device::{DeviceLibrary, VtFlavor};
///
/// let lib = DeviceLibrary::sevennm();
/// let cell = Sram6t::new(&lib, VtFlavor::Hvt);
/// assert_eq!(cell.flavor(), VtFlavor::Hvt);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sram6t {
    flavor: VtFlavor,
    pu_l: FinFet,
    pd_l: FinFet,
    acc_l: FinFet,
    pu_r: FinFet,
    pd_r: FinFet,
    acc_r: FinFet,
}

impl Sram6t {
    /// Builds a nominal all-single-fin 6T cell of the given flavor from a
    /// device library.
    #[must_use]
    pub fn new(library: &DeviceLibrary, flavor: VtFlavor) -> Self {
        let n = library.nfet(flavor).clone();
        let p = library.pfet(flavor).clone();
        Self {
            flavor,
            pu_l: FinFet::new(p.clone(), 1),
            pd_l: FinFet::new(n.clone(), 1),
            acc_l: FinFet::new(n.clone(), 1),
            pu_r: FinFet::new(p, 1),
            pd_r: FinFet::new(n.clone(), 1),
            acc_r: FinFet::new(n, 1),
        }
    }

    /// Returns a copy with fresh random Vt shifts on all six transistors —
    /// one Monte Carlo sample.
    #[must_use]
    pub fn with_variation<R: Rng>(&self, rng: &mut R) -> Self {
        let mut sampler = VtSampler::new(rng);
        Self {
            flavor: self.flavor,
            pu_l: sampler.perturb(&self.pu_l),
            pd_l: sampler.perturb(&self.pd_l),
            acc_l: sampler.perturb(&self.acc_l),
            pu_r: sampler.perturb(&self.pu_r),
            pd_r: sampler.perturb(&self.pd_r),
            acc_r: sampler.perturb(&self.acc_r),
        }
    }

    /// Threshold flavor of the cell transistors.
    #[must_use]
    pub fn flavor(&self) -> VtFlavor {
        self.flavor
    }

    /// Lumped capacitance loading a storage node: the opposing inverter's
    /// gates plus this side's drains.
    fn storage_node_cap(&self) -> f64 {
        (self.pu_r.c_gate()
            + self.pd_r.c_gate()
            + self.pu_l.c_drain()
            + self.pd_l.c_drain()
            + self.acc_l.c_drain())
        .farads()
    }

    /// Builds the full 6T netlist with all rails as named sources:
    /// `VDDC`, `VSSC`, `VWL`, `VBL`, `VBLB`.
    ///
    /// * `bias` sets the DC rail levels; `wl` selects the wordline
    ///   waveform (e.g. [`Waveform::dc`] of 0 for hold, of `bias.vwl` for
    ///   an asserted WL, or a step for transient writes).
    /// * `bl`/`blb` are the bitline waveforms (precharged to `vdd` for
    ///   hold/read; driven for writes).
    pub fn circuit(
        &self,
        bias: &AssistVoltages,
        wl: Waveform,
        bl: Waveform,
        blb: Waveform,
    ) -> (Circuit, CellNodes) {
        let mut ckt = Circuit::new();
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        let n_bl = ckt.node("bl");
        let n_blb = ckt.node("blb");
        let n_wl = ckt.node("wl");
        let cvdd = ckt.node("cvdd");
        let cvss = ckt.node("cvss");

        ckt.vsource("VDDC", cvdd, Circuit::GROUND, Waveform::dc(bias.vddc));
        ckt.vsource("VSSC", cvss, Circuit::GROUND, Waveform::dc(bias.vssc));
        ckt.vsource("VWL", n_wl, Circuit::GROUND, wl);
        ckt.vsource("VBL", n_bl, Circuit::GROUND, bl);
        ckt.vsource("VBLB", n_blb, Circuit::GROUND, blb);

        // Left inverter: input QB, output Q.
        ckt.fet("PU_L", qb, q, cvdd, self.pu_l.clone());
        ckt.fet("PD_L", qb, q, cvss, self.pd_l.clone());
        // Right inverter: input Q, output QB.
        ckt.fet("PU_R", q, qb, cvdd, self.pu_r.clone());
        ckt.fet("PD_R", q, qb, cvss, self.pd_r.clone());
        // Access transistors (drain on the bitline side).
        ckt.fet("ACC_L", n_wl, n_bl, q, self.acc_l.clone());
        ckt.fet("ACC_R", n_wl, n_blb, qb, self.acc_r.clone());

        // Lumped storage-node capacitances (gate + junction loading).
        ckt.capacitor("CQ", q, Circuit::GROUND, self.storage_node_cap());
        ckt.capacitor("CQB", qb, Circuit::GROUND, self.storage_node_cap());
        // Wordline gate load (both access gates): makes the WL driver's
        // energy observable in transient write-energy integrations.
        ckt.capacitor(
            "CWL",
            n_wl,
            Circuit::GROUND,
            (self.acc_l.c_gate() + self.acc_r.c_gate()).farads(),
        );

        (
            ckt,
            CellNodes {
                q,
                qb,
                bl: n_bl,
                blb: n_blb,
                wl: n_wl,
                cvdd,
                cvss,
            },
        )
    }

    /// Builds the hold-state netlist: WL low, both bitlines precharged to
    /// `vdd` (the array's precharge level, *not* `V_DDC`).
    pub fn hold_circuit(&self, bias: &AssistVoltages, vdd: Voltage) -> (Circuit, CellNodes) {
        self.circuit(
            bias,
            Waveform::dc(Voltage::ZERO),
            Waveform::dc(vdd),
            Waveform::dc(vdd),
        )
    }

    /// Builds the read-access netlist: WL asserted at `vdd` (WL overdrive
    /// is a write assist), both bitlines clamped at the precharge level.
    pub fn read_circuit(&self, bias: &AssistVoltages, vdd: Voltage) -> (Circuit, CellNodes) {
        self.circuit(
            bias,
            Waveform::dc(vdd),
            Waveform::dc(vdd),
            Waveform::dc(vdd),
        )
    }

    /// Builds the DC write netlist for flipping `Q` from 1 to 0: BL driven
    /// to `bias.vbl` (0, or negative with the negative-BL assist), BLB
    /// held at `vdd`, WL at an arbitrary test level `vwl_test` (the write
    /// margin search bisects over it).
    pub fn write_dc_circuit(
        &self,
        bias: &AssistVoltages,
        vdd: Voltage,
        vwl_test: Voltage,
    ) -> (Circuit, CellNodes) {
        self.circuit(
            bias,
            Waveform::dc(vwl_test),
            Waveform::dc(bias.vbl),
            Waveform::dc(vdd),
        )
    }

    /// Builds the transient write netlist: WL steps from 0 to `bias.vwl`
    /// at `t_start` with rise time `t_rise`; BL pre-driven to `bias.vbl`,
    /// BLB at `vdd`.
    pub fn write_transient_circuit(
        &self,
        bias: &AssistVoltages,
        vdd: Voltage,
        t_start: Time,
        t_rise: Time,
    ) -> (Circuit, CellNodes) {
        self.circuit(
            bias,
            Waveform::step(Voltage::ZERO, bias.vwl, t_start, t_rise),
            Waveform::dc(bias.vbl),
            Waveform::dc(vdd),
        )
    }

    /// Builds a broken-loop voltage-transfer-curve netlist for butterfly
    /// extraction: the selected inverter's input is driven by the source
    /// `VU` at node `u`; its output (`out`) is loaded by the corresponding
    /// access transistor to a bitline clamped at `vdd`.
    ///
    /// Returns `(circuit, input_node, output_node)`.
    pub fn vtc_circuit(
        &self,
        half: VtcHalf,
        mode: VtcMode,
        bias: &AssistVoltages,
        vdd: Voltage,
    ) -> (Circuit, NodeId, NodeId) {
        let (pu, pd, acc) = match half {
            VtcHalf::Left => (&self.pu_l, &self.pd_l, &self.acc_l),
            VtcHalf::Right => (&self.pu_r, &self.pd_r, &self.acc_r),
        };
        let wl_level = match mode {
            VtcMode::Hold => Voltage::ZERO,
            VtcMode::Read => vdd,
        };
        let mut ckt = Circuit::new();
        let u = ckt.node("u");
        let out = ckt.node("out");
        let n_bl = ckt.node("bl");
        let n_wl = ckt.node("wl");
        let cvdd = ckt.node("cvdd");
        let cvss = ckt.node("cvss");

        ckt.vsource("VU", u, Circuit::GROUND, Waveform::dc(bias.vssc));
        ckt.vsource("VDDC", cvdd, Circuit::GROUND, Waveform::dc(bias.vddc));
        ckt.vsource("VSSC", cvss, Circuit::GROUND, Waveform::dc(bias.vssc));
        ckt.vsource("VWL", n_wl, Circuit::GROUND, Waveform::dc(wl_level));
        ckt.vsource("VBL", n_bl, Circuit::GROUND, Waveform::dc(vdd));

        ckt.fet("PU", u, out, cvdd, pu.clone());
        ckt.fet("PD", u, out, cvss, pd.clone());
        ckt.fet("ACC", n_wl, n_bl, out, acc.clone());

        (ckt, u, out)
    }

    /// Access transistor of one half (used by read-current analysis).
    #[must_use]
    pub fn access(&self, half: VtcHalf) -> &FinFet {
        match half {
            VtcHalf::Left => &self.acc_l,
            VtcHalf::Right => &self.acc_r,
        }
    }

    /// Pull-down transistor of one half.
    #[must_use]
    pub fn pull_down(&self, half: VtcHalf) -> &FinFet {
        match half {
            VtcHalf::Left => &self.pd_l,
            VtcHalf::Right => &self.pd_r,
        }
    }

    /// Pull-up transistor of one half.
    #[must_use]
    pub fn pull_up(&self, half: VtcHalf) -> &FinFet {
        match half {
            VtcHalf::Left => &self.pu_l,
            VtcHalf::Right => &self.pu_r,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sram_spice::DcSolver;

    fn vdd() -> Voltage {
        Voltage::from_millivolts(450.0)
    }

    #[test]
    fn hold_circuit_is_bistable() {
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd());
        let (ckt, nodes) = cell.hold_circuit(&bias, vdd());
        ckt.validate().unwrap();

        let zero = DcSolver::new()
            .nodeset(nodes.q, Voltage::ZERO)
            .nodeset(nodes.qb, vdd())
            .solve(&ckt)
            .unwrap();
        assert!(zero.voltage(nodes.q).volts() < 0.05);
        assert!(zero.voltage(nodes.qb).volts() > 0.40);

        let one = DcSolver::new()
            .nodeset(nodes.q, vdd())
            .nodeset(nodes.qb, Voltage::ZERO)
            .solve(&ckt)
            .unwrap();
        assert!(one.voltage(nodes.q).volts() > 0.40);
        assert!(one.voltage(nodes.qb).volts() < 0.05);
    }

    #[test]
    fn boosted_rails_move_storage_levels() {
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd())
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vssc(Voltage::from_millivolts(-240.0));
        let (ckt, nodes) = cell.hold_circuit(&bias, vdd());
        let sol = DcSolver::new()
            .nodeset(nodes.q, Voltage::ZERO)
            .nodeset(nodes.qb, bias.vddc)
            .solve(&ckt)
            .unwrap();
        // Q sits near V_SSC, QB near V_DDC: the negative-Gnd mechanism of
        // Fig. 4 (access transistor sees a larger Vds/Vgs).
        assert!(
            sol.voltage(nodes.q).volts() < -0.15,
            "q = {}",
            sol.voltage(nodes.q)
        );
        assert!(
            sol.voltage(nodes.qb).volts() > 0.50,
            "qb = {}",
            sol.voltage(nodes.qb)
        );
    }

    #[test]
    fn vtc_circuit_inverts() {
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Lvt);
        let bias = AssistVoltages::nominal(vdd());
        let (mut ckt, _u, out) = cell.vtc_circuit(VtcHalf::Left, VtcMode::Hold, &bias, vdd());
        ckt.set_source_voltage("VU", Voltage::ZERO).unwrap();
        let lo_in = DcSolver::new().solve(&ckt).unwrap();
        ckt.set_source_voltage("VU", vdd()).unwrap();
        let hi_in = DcSolver::new().solve(&ckt).unwrap();
        assert!(lo_in.voltage(out) > hi_in.voltage(out));
    }

    #[test]
    fn read_mode_lifts_vtc_low_level() {
        // With the WL on and BL at Vdd, the access transistor fights the
        // pull-down: the VTC low output level rises — the read-disturb
        // mechanism that degrades RSNM.
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(vdd());
        let low_of = |mode| {
            let (mut ckt, _u, out) = cell.vtc_circuit(VtcHalf::Left, mode, &bias, vdd());
            ckt.set_source_voltage("VU", vdd()).unwrap();
            DcSolver::new().solve(&ckt).unwrap().voltage(out)
        };
        let hold_low = low_of(VtcMode::Hold);
        let read_low = low_of(VtcMode::Read);
        assert!(
            read_low.volts() > hold_low.volts() + 0.01,
            "hold {hold_low}, read {read_low}"
        );
    }

    #[test]
    fn variation_changes_all_six_devices() {
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Hvt);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let sample = cell.with_variation(&mut rng);
        assert_ne!(sample, cell);
        for half in [VtcHalf::Left, VtcHalf::Right] {
            assert_ne!(sample.access(half).vt_shift(), Voltage::ZERO);
            assert_ne!(sample.pull_down(half).vt_shift(), Voltage::ZERO);
            assert_ne!(sample.pull_up(half).vt_shift(), Voltage::ZERO);
        }
    }
}

#[cfg(test)]
mod export_tests {
    use super::*;
    use crate::AssistVoltages;
    use sram_spice::netlist_to_spice;

    #[test]
    fn six_t_cell_deck_is_complete() {
        let lib = DeviceLibrary::sevennm();
        let cell = Sram6t::new(&lib, VtFlavor::Hvt);
        let vdd = Voltage::from_millivolts(450.0);
        let (ckt, _nodes) = cell.hold_circuit(&AssistVoltages::nominal(vdd), vdd);
        let deck = netlist_to_spice(&ckt, "6T hold");
        for dev in ["PU_L", "PD_L", "ACC_L", "PU_R", "PD_R", "ACC_R"] {
            assert!(deck.contains(dev), "missing {dev}");
        }
        for src in ["VDDC", "VSSC", "VWL", "VBL", "VBLB"] {
            assert!(deck.contains(src), "missing {src}");
        }
        assert!(deck.contains("HVT"));
    }
}
