//! One-dimensional look-up tables with linear interpolation.
//!
//! The paper stores SPICE-measured quantities "with dependencies on a
//! variable … in look-up tables"; this is that table.

use crate::CellError;

/// A 1-D look-up table mapping `x` to `y` with linear interpolation and
/// end-clamping.
///
/// # Examples
///
/// ```
/// use sram_cell::Lut1d;
///
/// # fn main() -> Result<(), sram_cell::CellError> {
/// let lut = Lut1d::new(vec![(0.0, 1.0), (1.0, 3.0)])?;
/// assert_eq!(lut.eval(0.5), 2.0);
/// assert_eq!(lut.eval(9.0), 3.0); // clamped
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Lut1d {
    points: Vec<(f64, f64)>,
}

impl Lut1d {
    /// Creates a table from `(x, y)` breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MeasurementFailed`] when fewer than one point
    /// is supplied or the breakpoints are not strictly increasing in `x`.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, CellError> {
        if points.is_empty() {
            return Err(CellError::MeasurementFailed {
                what: "LUT",
                reason: "need at least one breakpoint".into(),
            });
        }
        if !points.windows(2).all(|w| w[1].0 > w[0].0) {
            return Err(CellError::MeasurementFailed {
                what: "LUT",
                reason: "breakpoints must be strictly increasing".into(),
            });
        }
        Ok(Self { points })
    }

    /// Builds a table by sampling `f` at `xs`.
    ///
    /// # Errors
    ///
    /// Propagates the first error from `f`, or the constructor's
    /// validation errors.
    pub fn tabulate<F>(xs: &[f64], mut f: F) -> Result<Self, CellError>
    where
        F: FnMut(f64) -> Result<f64, CellError>,
    {
        let mut points = Vec::with_capacity(xs.len());
        for &x in xs {
            points.push((x, f(x)?));
        }
        Self::new(points)
    }

    /// Interpolated value at `x` (clamped to the table range).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts.len() - 1;
        if x >= pts[last].0 {
            return pts[last].1;
        }
        let idx = pts.partition_point(|&(px, _)| px <= x);
        let (x0, y0) = pts[idx - 1];
        let (x1, y1) = pts[idx];
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// The stored breakpoints.
    #[must_use]
    pub fn breakpoints(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Domain of the table, `(x_min, x_max)`.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        (self.points[0].0, self.points[self.points.len() - 1].0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_is_constant() {
        let lut = Lut1d::new(vec![(2.0, 5.0)]).unwrap();
        assert_eq!(lut.eval(-10.0), 5.0);
        assert_eq!(lut.eval(10.0), 5.0);
    }

    #[test]
    fn interpolates_linearly() {
        let lut = Lut1d::new(vec![(0.0, 0.0), (2.0, 4.0), (3.0, 0.0)]).unwrap();
        assert_eq!(lut.eval(1.0), 2.0);
        assert_eq!(lut.eval(2.5), 2.0);
    }

    #[test]
    fn rejects_unsorted() {
        assert!(Lut1d::new(vec![(1.0, 0.0), (0.0, 0.0)]).is_err());
        assert!(Lut1d::new(vec![]).is_err());
        assert!(Lut1d::new(vec![(1.0, 0.0), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn tabulate_samples_function() {
        let lut = Lut1d::tabulate(&[0.0, 1.0, 2.0], |x| Ok(x * x)).unwrap();
        assert_eq!(lut.eval(2.0), 4.0);
        assert_eq!(lut.domain(), (0.0, 2.0));
        assert_eq!(lut.breakpoints().len(), 3);
    }

    #[test]
    fn tabulate_propagates_errors() {
        let err = Lut1d::tabulate(&[0.0, 1.0], |x| {
            if x > 0.5 {
                Err(CellError::BracketingFailed { what: "test" })
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(matches!(err, CellError::BracketingFailed { .. }));
    }
}
