//! Read-current measurement and its power-law fit.
//!
//! Section 5 of the paper models the cell read current analytically as
//! `I_read = b · (V_DDC − V_SSC − Vt)^a`, reporting `a = 1.3`,
//! `b = 9.5e-5 A/V^1.3`, `Vt = 335 mV` for HVT devices. This module
//! measures `I_read` by DC simulation of the full cell and regresses the
//! same three-parameter fit from the measurements, so the paper's claim
//! can be checked against our substitute device model.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use sram_spice::DcSolver;
use sram_units::{Current, Voltage};

impl CellCharacterizer {
    /// Cell read current: with the wordline asserted and both bitlines
    /// clamped at the precharge level, the current pulled out of the
    /// bitline on the '0' side (through `ACC_L` and `PD_L` in series).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn read_current(&self, bias: &AssistVoltages) -> Result<Current, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let (ckt, nodes) = self.cell().read_circuit(bias, self.vdd());
        let sol = DcSolver::new()
            .nodeset(nodes.q, bias.vssc)
            .nodeset(nodes.qb, bias.vddc)
            .solve(&ckt)?;
        // Positive branch current flows into the source's + terminal;
        // the cell *draws* current from the BL clamp, so negate.
        let i = sol.source_current(&ckt, "VBL")?;
        Ok(Current::from_amps(-i.amps()))
    }
}

/// A fitted power law `I_read = b · (V_DDC − V_SSC − Vt)^a`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadCurrentFit {
    /// Exponent `a` (the paper reports 1.3).
    pub a: f64,
    /// Coefficient `b` in A/V^a (the paper reports 9.5e-5 for HVT).
    pub b: f64,
    /// Effective threshold `Vt` (the paper reports 335 mV for HVT).
    pub vt: Voltage,
    /// Root-mean-square relative residual of the fit.
    pub rms_relative_error: f64,
}

impl ReadCurrentFit {
    /// Fits the power law to `(overdrive_source, current)` samples, where
    /// the overdrive source is `V_DDC − V_SSC` in volts.
    ///
    /// For each candidate `Vt` on a fine grid, `ln I = ln b + a·ln(V−Vt)`
    /// is an ordinary least-squares line; the `Vt` minimizing the residual
    /// wins.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::MeasurementFailed`] with fewer than three
    /// samples or non-positive currents.
    pub fn fit(samples: &[(Voltage, Current)]) -> Result<Self, CellError> {
        if samples.len() < 3 {
            return Err(CellError::MeasurementFailed {
                what: "read-current fit",
                reason: "need at least three samples".into(),
            });
        }
        if samples.iter().any(|&(_, i)| i.amps() <= 0.0) {
            return Err(CellError::MeasurementFailed {
                what: "read-current fit",
                reason: "all currents must be positive".into(),
            });
        }
        let v_min = samples
            .iter()
            .map(|&(v, _)| v.volts())
            .fold(f64::INFINITY, f64::min);

        // Normal-equation denominator below this is numerically singular
        // (all abscissae equal); dimensionless, in squared log-volts.
        const DEGENERATE_FIT_DENOM: f64 = 1e-12;
        let mut best: Option<(f64, f64, f64, f64)> = None; // (sse, a, ln_b, vt)
        let steps = 400;
        for k in 0..steps {
            let vt = v_min * f64::from(k) / f64::from(steps);
            // OLS of ln I on ln(V - vt).
            let pts: Vec<(f64, f64)> = samples
                .iter()
                .map(|&(v, i)| ((v.volts() - vt).ln(), i.amps().ln()))
                .collect();
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let denom = n * sxx - sx * sx;
            if denom.abs() < DEGENERATE_FIT_DENOM {
                continue;
            }
            let a = (n * sxy - sx * sy) / denom;
            let ln_b = (sy - a * sx) / n;
            let sse: f64 = pts
                .iter()
                .map(|&(x, y)| {
                    let e = y - (ln_b + a * x);
                    e * e
                })
                .sum();
            if best.is_none_or(|(b_sse, ..)| sse < b_sse) {
                best = Some((sse, a, ln_b, vt));
            }
        }
        let (sse, a, ln_b, vt) = best.ok_or(CellError::BracketingFailed {
            what: "read-current fit",
        })?;
        Ok(Self {
            a,
            b: ln_b.exp(),
            vt: Voltage::from_volts(vt),
            rms_relative_error: (sse / samples.len() as f64).sqrt(),
        })
    }

    /// Evaluates the fitted law at a cell overdrive `V_DDC − V_SSC`.
    #[must_use]
    pub fn eval(&self, read_swing: Voltage) -> Current {
        let ov = (read_swing.volts() - self.vt.volts()).max(0.0);
        Current::from_amps(self.b * ov.powf(self.a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    #[test]
    fn fit_recovers_synthetic_power_law() {
        // Generate samples from the paper's own constants and re-fit.
        let (a, b, vt) = (1.3, 9.5e-5, 0.335);
        let samples: Vec<(Voltage, Current)> = (0..=24)
            .map(|k| {
                let v = 0.45 + 0.01 * f64::from(k); // 450..690 mV swing
                let i = b * (v - vt).powf(a);
                (Voltage::from_volts(v), Current::from_amps(i))
            })
            .collect();
        let fit = ReadCurrentFit::fit(&samples).unwrap();
        assert!((fit.a - a).abs() < 0.05, "a = {}", fit.a);
        assert!((fit.vt.volts() - vt).abs() < 0.02, "vt = {}", fit.vt);
        assert!(fit.rms_relative_error < 0.01);
        // Round trip through eval.
        let i = fit.eval(Voltage::from_volts(0.55));
        let expect = b * (0.55 - vt).powf(a);
        assert!((i.amps() / expect - 1.0).abs() < 0.05);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(ReadCurrentFit::fit(&[]).is_err());
        let bad = vec![
            (Voltage::from_volts(0.4), Current::from_amps(-1.0)),
            (Voltage::from_volts(0.5), Current::from_amps(1.0)),
            (Voltage::from_volts(0.6), Current::from_amps(1.0)),
        ];
        assert!(ReadCurrentFit::fit(&bad).is_err());
    }

    #[test]
    fn negative_gnd_boosts_simulated_read_current() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let vdd = lib.nominal_vdd();
        let base = chr.read_current(&AssistVoltages::nominal(vdd)).unwrap();
        let assisted = chr
            .read_current(
                &AssistVoltages::nominal(vdd)
                    .with_vssc(Voltage::from_millivolts(-240.0))
                    .with_vddc(Voltage::from_millivolts(550.0)),
            )
            .unwrap();
        let gain = assisted / base;
        assert!(
            gain > 2.0,
            "negative Gnd + Vdd boost should strongly raise I_read (got {gain:.2}x)"
        );
    }

    #[test]
    fn lvt_read_current_roughly_twice_hvt() {
        let lib = DeviceLibrary::sevennm();
        let vdd = lib.nominal_vdd();
        let bias = AssistVoltages::nominal(vdd);
        let hvt = CellCharacterizer::new(&lib, VtFlavor::Hvt)
            .read_current(&bias)
            .unwrap();
        let lvt = CellCharacterizer::new(&lib, VtFlavor::Lvt)
            .read_current(&bias)
            .unwrap();
        let r = lvt / hvt;
        assert!(r > 1.4 && r < 3.2, "I_read LVT/HVT = {r:.2} (paper: ~2x)");
    }
}
