//! Cell leakage power.
//!
//! Measured in the hold state (wordline low, bitlines precharged) as the
//! total power delivered by all bias sources. The paper's anchors:
//! 1.692 nW for 6T-LVT and 0.082 nW for 6T-HVT at the nominal 450 mV —
//! a 20× reduction that is the entire premise of adopting HVT cells.

use crate::{AssistVoltages, CellCharacterizer, CellError};
use sram_spice::DcSolver;
use sram_units::{Power, Voltage};

impl CellCharacterizer {
    /// Leakage power of the cell in the hold state under `bias`, holding
    /// `Q = 0`. Returns the summed power delivered by every bias source.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn leakage_power(&self, bias: &AssistVoltages) -> Result<Power, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let (ckt, nodes) = self.cell().hold_circuit(bias, self.vdd());
        let sol = DcSolver::new()
            .nodeset(nodes.q, bias.vssc)
            .nodeset(nodes.qb, bias.vddc)
            .solve(&ckt)?;
        // Power delivered by a source = -V * I (branch current is defined
        // into the + terminal, so a delivering supply has I < 0).
        let mut total = 0.0;
        for (name, level) in [
            ("VDDC", bias.vddc),
            ("VSSC", bias.vssc),
            ("VWL", Voltage::ZERO),
            ("VBL", self.vdd()),
            ("VBLB", self.vdd()),
        ] {
            let i = sol.source_current(&ckt, name)?;
            total -= level.volts() * i.amps();
        }
        Ok(Power::from_watts(total))
    }

    /// Leakage power in the *unassisted* hold state at supply `vdd`
    /// (rails at `Vdd`/0): the quantity plotted in the paper's Fig. 2(b)
    /// and used as `P_leak,sram` in Eq. (4).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn hold_leakage_at(&self, vdd: Voltage) -> Result<Power, CellError> {
        let scaled = self.clone().with_vdd(vdd);
        scaled.leakage_power(&AssistVoltages::nominal(vdd))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_device::{DeviceLibrary, VtFlavor};

    fn chr(flavor: VtFlavor) -> CellCharacterizer {
        CellCharacterizer::new(&DeviceLibrary::sevennm(), flavor)
    }

    #[test]
    fn leakage_is_positive_and_tiny() {
        let p = chr(VtFlavor::Hvt)
            .leakage_power(&AssistVoltages::nominal(Voltage::from_millivolts(450.0)))
            .unwrap();
        assert!(p.watts() > 0.0);
        assert!(p.nanowatts() < 10.0, "HVT leakage = {p}");
    }

    #[test]
    fn hvt_leaks_roughly_twenty_x_less() {
        let vdd = Voltage::from_millivolts(450.0);
        let lvt = chr(VtFlavor::Lvt).hold_leakage_at(vdd).unwrap();
        let hvt = chr(VtFlavor::Hvt).hold_leakage_at(vdd).unwrap();
        let ratio = lvt.watts() / hvt.watts();
        assert!(
            ratio > 10.0 && ratio < 40.0,
            "LVT/HVT leakage ratio = {ratio:.1} (paper: 20x)"
        );
    }

    #[test]
    fn leakage_drops_with_supply_scaling() {
        let c = chr(VtFlavor::Lvt);
        let high = c.hold_leakage_at(Voltage::from_millivolts(450.0)).unwrap();
        let low = c.hold_leakage_at(Voltage::from_millivolts(200.0)).unwrap();
        assert!(low < high, "Fig. 2(b) trend: {low} vs {high}");
    }

    #[test]
    fn lvt_at_100mv_still_leaks_more_than_hvt_at_nominal() {
        // The paper's sharpest Fig. 2(b) claim (about 5x).
        let lvt_low = chr(VtFlavor::Lvt)
            .hold_leakage_at(Voltage::from_millivolts(100.0))
            .unwrap();
        let hvt_nom = chr(VtFlavor::Hvt)
            .hold_leakage_at(Voltage::from_millivolts(450.0))
            .unwrap();
        assert!(
            lvt_low.watts() > hvt_nom.watts(),
            "LVT@100mV {lvt_low} should exceed HVT@450mV {hvt_nom}"
        );
    }
}
