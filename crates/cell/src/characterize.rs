//! The cell characterizer: simulation-backed measurements.

use crate::butterfly::butterfly_snm;
use crate::{AssistVoltages, CellError, Sram6t, Vtc, VtcHalf, VtcMode};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_spice::DcSweep;
use sram_units::Voltage;

/// Measures 6T-cell figures of merit by circuit simulation.
///
/// One characterizer is bound to a device library, a cell flavor, and the
/// array supply `Vdd`. Measurements take an [`AssistVoltages`] bias so the
/// assist sweeps of Figs. 3 and 5 are plain loops over biases.
///
/// # Examples
///
/// ```no_run
/// use sram_cell::{AssistVoltages, CellCharacterizer};
/// use sram_device::{DeviceLibrary, VtFlavor};
///
/// # fn main() -> Result<(), sram_cell::CellError> {
/// let lib = DeviceLibrary::sevennm();
/// let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
/// let bias = AssistVoltages::nominal(lib.nominal_vdd());
/// let hsnm = chr.hold_snm(&bias)?;
/// let rsnm = chr.read_snm(&bias)?;
/// assert!(hsnm > rsnm); // read access always disturbs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CellCharacterizer {
    cell: Sram6t,
    vdd: Voltage,
    vtc_points: usize,
}

impl CellCharacterizer {
    /// Creates a characterizer for a nominal (variation-free) cell of the
    /// given flavor at the library's nominal supply.
    #[must_use]
    pub fn new(library: &DeviceLibrary, flavor: VtFlavor) -> Self {
        Self {
            cell: Sram6t::new(library, flavor),
            vdd: library.nominal_vdd(),
            vtc_points: 61,
        }
    }

    /// Overrides the array supply voltage (used by the Fig. 2 voltage
    /// scaling sweeps).
    #[must_use]
    pub fn with_vdd(mut self, vdd: Voltage) -> Self {
        self.vdd = vdd;
        self
    }

    /// Characterizes a specific cell instance (e.g. a Monte Carlo sample
    /// from [`Sram6t::with_variation`]).
    #[must_use]
    pub fn with_cell(mut self, cell: Sram6t) -> Self {
        self.cell = cell;
        self
    }

    /// Sets the number of VTC sweep points (trade accuracy for speed; the
    /// default is 61).
    ///
    /// # Panics
    ///
    /// Panics if `points < 8`.
    #[must_use]
    pub fn with_vtc_points(mut self, points: usize) -> Self {
        assert!(points >= 8, "need at least 8 VTC points");
        self.vtc_points = points;
        self
    }

    /// The cell under characterization.
    #[must_use]
    pub fn cell(&self) -> &Sram6t {
        &self.cell
    }

    /// The array supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Extracts the voltage-transfer curve of one half-cell under the
    /// given mode and bias, sweeping the input from `V_SSC` to `V_DDC`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn vtc(
        &self,
        half: VtcHalf,
        mode: VtcMode,
        bias: &AssistVoltages,
    ) -> Result<Vtc, CellError> {
        bias.validate().map_err(CellError::InvalidBias)?;
        let (ckt, _u, out) = self.cell.vtc_circuit(half, mode, bias, self.vdd);
        let points = DcSweep::new("VU", bias.vssc, bias.vddc, self.vtc_points).run(&ckt)?;
        Vtc::new(
            points
                .into_iter()
                .map(|p| (p.value, p.solution.voltage(out)))
                .collect(),
        )
    }

    /// Hold static noise margin from the hold-mode butterfly.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; reports a collapsed butterfly as
    /// [`CellError::MeasurementFailed`].
    pub fn hold_snm(&self, bias: &AssistVoltages) -> Result<Voltage, CellError> {
        let left = self.vtc(VtcHalf::Left, VtcMode::Hold, bias)?;
        let right = self.vtc(VtcHalf::Right, VtcMode::Hold, bias)?;
        butterfly_snm(&left, &right)
    }

    /// Read static noise margin from the read-mode butterfly (WL asserted,
    /// bitlines clamped at the precharge level).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; reports a collapsed butterfly as
    /// [`CellError::MeasurementFailed`].
    pub fn read_snm(&self, bias: &AssistVoltages) -> Result<Voltage, CellError> {
        let left = self.vtc(VtcHalf::Left, VtcMode::Read, bias)?;
        let right = self.vtc(VtcHalf::Right, VtcMode::Read, bias)?;
        butterfly_snm(&left, &right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> AssistVoltages {
        AssistVoltages::nominal(Voltage::from_millivolts(450.0))
    }

    #[test]
    fn read_snm_is_below_hold_snm() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(41);
        let hsnm = chr.hold_snm(&nominal()).unwrap();
        let rsnm = chr.read_snm(&nominal()).unwrap();
        assert!(
            rsnm < hsnm,
            "RSNM {rsnm} should be below HSNM {hsnm} (read disturb)"
        );
        assert!(hsnm.volts() > 0.05, "HSNM {hsnm} implausibly small");
    }

    #[test]
    fn hvt_margins_beat_lvt_margins() {
        let lib = DeviceLibrary::sevennm();
        let hvt = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(41);
        let lvt = CellCharacterizer::new(&lib, VtFlavor::Lvt).with_vtc_points(41);
        let rsnm_hvt = hvt.read_snm(&nominal()).unwrap();
        let rsnm_lvt = lvt.read_snm(&nominal()).unwrap();
        assert!(
            rsnm_hvt > rsnm_lvt,
            "RSNM: HVT {rsnm_hvt} vs LVT {rsnm_lvt} — paper Fig. 3(a)"
        );
    }

    #[test]
    fn vdd_boost_improves_read_snm() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(41);
        let base = chr.read_snm(&nominal()).unwrap();
        let boosted = chr
            .read_snm(&nominal().with_vddc(Voltage::from_millivolts(550.0)))
            .unwrap();
        assert!(
            boosted > base,
            "Vdd boost must raise RSNM: {base} -> {boosted} (paper Fig. 3(b))"
        );
    }

    #[test]
    fn invalid_bias_is_rejected() {
        let lib = DeviceLibrary::sevennm();
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let bad = nominal().with_vddc(Voltage::from_volts(-1.0));
        assert!(matches!(chr.read_snm(&bad), Err(CellError::InvalidBias(_))));
    }
}
