//! Characterization snapshots: the look-up tables consumed by the array
//! model and the optimizer.
//!
//! The paper characterizes cells once with SPICE and stores the results in
//! look-up tables so the exhaustive search never re-simulates. A
//! [`CellCharacterization`] is that artifact. Two sources exist:
//!
//! * [`CellCharacterization::characterize`] — measured from our simulator
//!   (the full-stack reproduction);
//! * [`CellCharacterization::paper_hvt`] / [`paper_lvt`] — built directly
//!   from every constant the paper publishes (read-current fit, leakage
//!   anchors, yield-crossing rail voltages), giving a paper-faithful mode
//!   for reproducing the headline tables independently of our device
//!   calibration.
//!
//! [`paper_lvt`]: CellCharacterization::paper_lvt

use crate::{AssistVoltages, CellCharacterizer, CellError, Lut1d};
use sram_device::VtFlavor;
use sram_units::{Current, Power, Time, Voltage};

/// Grid specification for building a characterization snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationGrid {
    /// Cell supply rail `V_DDC` used for the read tables.
    pub vddc: Voltage,
    /// Asserted wordline level used for the write scalars.
    pub vwl: Voltage,
    /// `V_SSC` sample points for the read-current / RSNM tables.
    pub vssc_values: Vec<Voltage>,
    /// `V_WL` sample points for the write-delay table.
    pub vwl_values: Vec<Voltage>,
}

impl CharacterizationGrid {
    /// The paper's search grid: `V_SSC ∈ {0, −10 mV, …, −240 mV}` (coarse
    /// 30 mV steps here — the tables interpolate linearly) and `V_WL`
    /// around the nominal-to-overdrive range.
    #[must_use]
    pub fn paper_default(vddc: Voltage, vwl: Voltage) -> Self {
        let vssc_values = (0..=8)
            .map(|k| Voltage::from_millivolts(-30.0 * f64::from(k)))
            .collect();
        let vwl_values = (0..=6)
            .map(|k| Voltage::from_millivolts(450.0 + 30.0 * f64::from(k)))
            .collect();
        Self {
            vddc,
            vwl,
            vssc_values,
            vwl_values,
        }
    }
}

/// Cell look-up tables: everything the array model and optimizer need,
/// with no further circuit simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCharacterization {
    flavor: VtFlavor,
    vdd: Voltage,
    vddc: Voltage,
    vwl: Voltage,
    leakage: Power,
    hsnm: Voltage,
    /// RSNM (volts) vs `V_SSC` (volts), at `vddc`.
    rsnm_vs_vssc: Lut1d,
    /// Read current (amps) vs `V_SSC` (volts), at `vddc`.
    read_current_vs_vssc: Lut1d,
    /// Write margin at `vwl`.
    wm: Voltage,
    /// Cell write delay (seconds) vs `V_WL` (volts).
    write_delay_vs_vwl: Lut1d,
}

impl CellCharacterization {
    /// Measures a snapshot from the simulator.
    ///
    /// # Errors
    ///
    /// Propagates characterization failures. A collapsed RSNM butterfly at
    /// some `V_SSC` is recorded as zero margin rather than failing the
    /// whole snapshot.
    pub fn characterize(
        characterizer: &CellCharacterizer,
        grid: &CharacterizationGrid,
    ) -> Result<Self, CellError> {
        sram_probe::probe_inc!("cell.characterizations");
        let _span = sram_probe::probe_span!("cell.characterize_ns");
        let _trace = sram_probe::trace_span!("cell.characterize");
        // Chaos hooks: `cell.slow` stretches this snapshot by the plan's
        // injected latency; `cell.characterize_nan` poisons it outright —
        // the transient measurement failure the retry layer must absorb.
        sram_faults::maybe_sleep("cell.slow");
        if sram_faults::should_fire("cell.characterize_nan") {
            return Err(CellError::MeasurementFailed {
                what: "characterization",
                reason: "injected NaN measurement (fault plan)".to_string(),
            });
        }
        let vdd = characterizer.vdd();
        let nominal = AssistVoltages::nominal(vdd);
        let leakage = characterizer.leakage_power(&nominal)?;
        let hsnm = characterizer.hold_snm(&nominal)?;

        let mut vssc_sorted = grid.vssc_values.clone();
        vssc_sorted.sort_by(|a, b| a.volts().total_cmp(&b.volts()));

        let mut rsnm_pts = Vec::with_capacity(vssc_sorted.len());
        let mut iread_pts = Vec::with_capacity(vssc_sorted.len());
        for &vssc in &vssc_sorted {
            let bias = nominal.with_vddc(grid.vddc).with_vssc(vssc);
            let rsnm = match characterizer.read_snm(&bias) {
                Ok(v) => v.volts(),
                Err(CellError::MeasurementFailed { .. }) => 0.0,
                Err(e) => return Err(e),
            };
            rsnm_pts.push((vssc.volts(), rsnm));
            iread_pts.push((vssc.volts(), characterizer.read_current(&bias)?.amps()));
        }

        let wm_bias = nominal.with_vwl(grid.vwl);
        let wm = characterizer.write_margin(&wm_bias)?;

        let mut vwl_sorted = grid.vwl_values.clone();
        vwl_sorted.sort_by(|a, b| a.volts().total_cmp(&b.volts()));
        let mut wd_pts = Vec::with_capacity(vwl_sorted.len());
        for &vwl in &vwl_sorted {
            let bias = nominal.with_vwl(vwl);
            let delay = characterizer.write_delay(&bias)?;
            wd_pts.push((vwl.volts(), delay.seconds()));
        }

        Ok(Self {
            flavor: characterizer.cell().flavor(),
            vdd,
            vddc: grid.vddc,
            vwl: grid.vwl,
            leakage,
            hsnm,
            rsnm_vs_vssc: Lut1d::new(rsnm_pts)?,
            read_current_vs_vssc: Lut1d::new(iread_pts)?,
            wm,
            write_delay_vs_vwl: Lut1d::new(wd_pts)?,
        })
    }

    /// Paper-faithful HVT snapshot at supply `vdd`, built from published
    /// constants: `I_read = 9.5e-5 · (V_DDC − V_SSC − 0.335)^1.3`,
    /// leakage 0.082 nW, RSNM yield crossing at `V_DDC = 550 mV`, WM yield
    /// crossing at `V_WL = 540 mV`, cell write delay ≈ 1.5 ps.
    #[must_use]
    pub fn paper_hvt(vdd: Voltage) -> Self {
        Self::paper_model(
            VtFlavor::Hvt,
            vdd,
            Voltage::from_millivolts(550.0),
            Voltage::from_millivolts(540.0),
            PaperCellModel::hvt(),
        )
    }

    /// Paper-faithful LVT snapshot at supply `vdd`: same model with the
    /// LVT threshold (83 mV lower), 1.692 nW leakage, RSNM crossing at
    /// `V_DDC = 640 mV` and WM crossing at `V_WL = 490 mV`.
    #[must_use]
    pub fn paper_lvt(vdd: Voltage) -> Self {
        Self::paper_model(
            VtFlavor::Lvt,
            vdd,
            Voltage::from_millivolts(640.0),
            Voltage::from_millivolts(490.0),
            PaperCellModel::lvt(),
        )
    }

    /// Paper-faithful snapshot with explicit rail choices (`vddc`, `vwl`)
    /// for one flavor — used by the optimizer's M1 policy where the rail
    /// is `max(V_DDC, V_WL)` rather than each technique's own minimum.
    #[must_use]
    pub fn paper_with_rails(flavor: VtFlavor, vdd: Voltage, vddc: Voltage, vwl: Voltage) -> Self {
        let model = match flavor {
            VtFlavor::Hvt => PaperCellModel::hvt(),
            VtFlavor::Lvt => PaperCellModel::lvt(),
        };
        Self::paper_model(flavor, vdd, vddc, vwl, model)
    }

    fn paper_model(
        flavor: VtFlavor,
        vdd: Voltage,
        vddc: Voltage,
        vwl: Voltage,
        m: PaperCellModel,
    ) -> Self {
        let delta = 0.35 * vdd.volts();
        // RSNM: crosses delta exactly at the published V_DDC; slope from
        // the published 1.9x HVT/LVT ratio at nominal (0.55 V/V fits both
        // flavors, see DESIGN.md). Negative Gnd slightly helps RSNM until
        // about -240 mV ("below -240 mV RSNM degrades"): +0.05 V/V.
        let rsnm = |vssc: f64| -> f64 {
            (delta + 0.55 * (vddc.volts() - m.rsnm_crossing_vddc) + 0.05 * (-vssc)).max(0.0)
        };
        let iread = |vssc: f64| -> f64 {
            let ov = (vddc.volts() - vssc - m.vt).max(MIN_OVERDRIVE_VOLTS);
            m.b * ov.powf(m.a)
        };
        let vssc_grid: Vec<f64> = (0..=24).map(|k| -0.240 + 0.010 * f64::from(k)).collect();
        let rsnm_pts: Vec<(f64, f64)> = vssc_grid.iter().map(|&v| (v, rsnm(v))).collect();
        let iread_pts: Vec<(f64, f64)> = vssc_grid.iter().map(|&v| (v, iread(v))).collect();
        // sram-lint: allow(no-panic) the grid is generated strictly ascending above
        let rsnm_vs_vssc = Lut1d::new(rsnm_pts).expect("grid sorted");
        // sram-lint: allow(no-panic) same generated ascending grid
        let read_current_vs_vssc = Lut1d::new(iread_pts).expect("grid sorted");

        // WM crosses delta exactly at the published V_WL; slope ~0.9 V/V
        // (the WM definition is nearly 1:1 in the applied WL level).
        let wm = Voltage::from_volts(delta + 0.9 * (vwl.volts() - m.wm_crossing_vwl));

        // Cell write delay ~1.5 ps at the crossing V_WL, improving with
        // overdrive (Fig. 5): quadratic in the overdrive ratio.
        let vwl_grid: Vec<f64> = (0..=10).map(|k| 0.400 + 0.030 * f64::from(k)).collect();
        let write_delay_vs_vwl = Lut1d::new(
            vwl_grid
                .iter()
                .map(|&v| {
                    (
                        v,
                        PAPER_CELL_WRITE_DELAY_SECONDS * (m.wm_crossing_vwl / v).powi(2),
                    )
                })
                .collect(),
        )
        // sram-lint: allow(no-panic) the grid is generated strictly ascending above
        .expect("grid sorted");

        Self {
            flavor,
            vdd,
            vddc,
            vwl,
            leakage: m.leakage,
            hsnm: Voltage::from_volts(m.hsnm_fraction * vdd.volts()),
            rsnm_vs_vssc,
            read_current_vs_vssc,
            wm,
            write_delay_vs_vwl,
        }
    }

    /// Cell flavor.
    #[must_use]
    pub fn flavor(&self) -> VtFlavor {
        self.flavor
    }

    /// Array supply voltage.
    #[must_use]
    pub fn vdd(&self) -> Voltage {
        self.vdd
    }

    /// Cell supply rail the read tables were characterized at.
    #[must_use]
    pub fn vddc(&self) -> Voltage {
        self.vddc
    }

    /// Wordline level the write scalars were characterized at.
    #[must_use]
    pub fn vwl(&self) -> Voltage {
        self.vwl
    }

    /// Hold leakage power `P_leak,sram` (Eq. 4).
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Hold static noise margin.
    #[must_use]
    pub fn hsnm(&self) -> Voltage {
        self.hsnm
    }

    /// Read static noise margin at cell ground `vssc`.
    #[must_use]
    pub fn rsnm(&self, vssc: Voltage) -> Voltage {
        Voltage::from_volts(self.rsnm_vs_vssc.eval(vssc.volts()))
    }

    /// Cell read current at cell ground `vssc`.
    #[must_use]
    pub fn read_current(&self, vssc: Voltage) -> Current {
        Current::from_amps(self.read_current_vs_vssc.eval(vssc.volts()))
    }

    /// Write margin at the characterized `V_WL`.
    #[must_use]
    pub fn write_margin(&self) -> Voltage {
        self.wm
    }

    /// Cell write delay at wordline level `vwl` (Table 3's
    /// `D_write_sram(V_WL)`).
    #[must_use]
    pub fn write_delay(&self, vwl: Voltage) -> Time {
        Time::from_seconds(self.write_delay_vs_vwl.eval(vwl.volts()))
    }

    /// Minimum of the three margins at cell ground `vssc` — the quantity
    /// the optimizer constrains to `≥ δ`.
    #[must_use]
    pub fn min_margin(&self, vssc: Voltage) -> Voltage {
        self.hsnm.min(self.rsnm(vssc)).min(self.wm)
    }

    /// Reassembles a snapshot from its parts (the persistence layer's
    /// constructor).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        flavor: VtFlavor,
        vdd: Voltage,
        vddc: Voltage,
        vwl: Voltage,
        leakage: Power,
        hsnm: Voltage,
        rsnm_vs_vssc: Lut1d,
        read_current_vs_vssc: Lut1d,
        wm: Voltage,
        write_delay_vs_vwl: Lut1d,
    ) -> Self {
        Self {
            flavor,
            vdd,
            vddc,
            vwl,
            leakage,
            hsnm,
            rsnm_vs_vssc,
            read_current_vs_vssc,
            wm,
            write_delay_vs_vwl,
        }
    }

    pub(crate) fn rsnm_lut(&self) -> &Lut1d {
        &self.rsnm_vs_vssc
    }

    pub(crate) fn read_current_lut(&self) -> &Lut1d {
        &self.read_current_vs_vssc
    }

    pub(crate) fn write_delay_lut(&self) -> &Lut1d {
        &self.write_delay_vs_vwl
    }

    /// Returns a copy with the hold leakage power replaced — used to
    /// transplant an independently measured leakage (e.g. at a different
    /// temperature) into a paper-constant snapshot.
    #[must_use]
    pub fn with_leakage(mut self, leakage: Power) -> Self {
        self.leakage = leakage;
        self
    }

    /// Returns a copy with every margin table derated by `k` standard
    /// deviations of process variation — the bridge from the paper's
    /// deterministic `δ` rule to its "accurate" `μ − kσ ≥ 0` constraint.
    ///
    /// The per-margin sigmas come from one Monte Carlo run (e.g.
    /// [`crate::YieldAnalyzer`]) at a representative bias; derating the
    /// look-up tables keeps the optimizer loop table-driven (no MC inside
    /// the search) while the constraint `min_margin ≥ 0` on the derated
    /// snapshot approximates `min(μ − kσ) ≥ 0`.
    #[must_use]
    pub fn derated(
        &self,
        k: f64,
        hsnm_sigma: Voltage,
        rsnm_sigma: Voltage,
        wm_sigma: Voltage,
    ) -> Self {
        let shift_lut = |lut: &Lut1d, sigma: Voltage| {
            Lut1d::new(
                lut.breakpoints()
                    .iter()
                    .map(|&(x, y)| (x, (y - k * sigma.volts()).max(0.0)))
                    .collect(),
            )
            // sram-lint: allow(no-panic) x-breakpoints are copied from an already-valid table
            .expect("breakpoints unchanged")
        };
        Self {
            hsnm: (self.hsnm - hsnm_sigma * k).max(Voltage::ZERO),
            rsnm_vs_vssc: shift_lut(&self.rsnm_vs_vssc, rsnm_sigma),
            wm: (self.wm - wm_sigma * k).max(Voltage::ZERO),
            read_current_vs_vssc: self.read_current_vs_vssc.clone(),
            write_delay_vs_vwl: self.write_delay_vs_vwl.clone(),
            ..*self
        }
    }
}

/// Read-current fit prefactor `b` (amps at 1 V overdrive) in the paper's
/// `I_read = b · (V_DDC − V_SSC − V_t)^a` fit — shared by both flavors.
const PAPER_IREAD_PREFACTOR_AMPS: f64 = 9.5e-5;
/// Read-current fit exponent `a` (dimensionless).
const PAPER_IREAD_EXPONENT: f64 = 1.3;
/// Effective threshold `V_t` of the HVT fit, volts.
const PAPER_HVT_VT_VOLTS: f64 = 0.335;
/// Effective threshold `V_t` of the LVT fit, volts (83 mV below HVT).
const PAPER_LVT_VT_VOLTS: f64 = 0.252;
/// Overdrive floor (volts) keeping the fit's `powf` off negative bases
/// when a deep `V_SSC` pushes the cell below threshold.
const MIN_OVERDRIVE_VOLTS: f64 = 1e-4;
/// Cell write delay (seconds) at the crossing `V_WL` — "≈ 1.5 ps".
const PAPER_CELL_WRITE_DELAY_SECONDS: f64 = 1.5e-12;

struct PaperCellModel {
    b: f64,
    a: f64,
    vt: f64,
    leakage: Power,
    hsnm_fraction: f64,
    rsnm_crossing_vddc: f64,
    wm_crossing_vwl: f64,
}

impl PaperCellModel {
    /// The published HVT fit: 0.082 nW leakage, RSNM yield crossing at
    /// `V_DDC = 550 mV`, WM crossing at `V_WL = 540 mV`.
    fn hvt() -> Self {
        Self {
            b: PAPER_IREAD_PREFACTOR_AMPS,
            a: PAPER_IREAD_EXPONENT,
            vt: PAPER_HVT_VT_VOLTS,
            leakage: Power::from_nanowatts(0.082),
            hsnm_fraction: 0.45,
            rsnm_crossing_vddc: 0.550,
            wm_crossing_vwl: 0.540,
        }
    }

    /// The published LVT fit: 1.692 nW leakage, RSNM crossing at
    /// `V_DDC = 640 mV`, WM crossing at `V_WL = 490 mV`.
    fn lvt() -> Self {
        Self {
            b: PAPER_IREAD_PREFACTOR_AMPS,
            a: PAPER_IREAD_EXPONENT,
            vt: PAPER_LVT_VT_VOLTS,
            leakage: Power::from_nanowatts(1.692),
            hsnm_fraction: 0.37,
            rsnm_crossing_vddc: 0.640,
            wm_crossing_vwl: 0.490,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vdd() -> Voltage {
        Voltage::from_millivolts(450.0)
    }

    #[test]
    fn paper_hvt_anchors() {
        let c = CellCharacterization::paper_hvt(vdd());
        assert_eq!(c.flavor(), VtFlavor::Hvt);
        assert!((c.leakage().nanowatts() - 0.082).abs() < 1e-9);
        // RSNM at V_SSC = 0 equals delta (yield crossing at 550 mV).
        let delta = 0.35 * 0.45;
        assert!((c.rsnm(Voltage::ZERO).volts() - delta).abs() < 1e-9);
        // Read-current fit at V_SSC = -240 mV: b*(0.455)^1.3.
        let i = c.read_current(Voltage::from_millivolts(-240.0));
        let expect = 9.5e-5 * (0.550 + 0.240 - 0.335f64).powf(1.3);
        assert!((i.amps() / expect - 1.0).abs() < 1e-6);
        // WM crossing at 540 mV.
        assert!((c.write_margin().volts() - delta).abs() < 1e-9);
    }

    #[test]
    fn paper_lvt_anchors() {
        let c = CellCharacterization::paper_lvt(vdd());
        assert!((c.leakage().nanowatts() - 1.692).abs() < 1e-9);
        let ratio = c.leakage().watts() / CellCharacterization::paper_hvt(vdd()).leakage().watts();
        assert!((ratio - 20.6).abs() < 1.0, "leakage ratio {ratio}");
    }

    #[test]
    fn rsnm_ratio_at_nominal_matches_fig3a() {
        // With no-assist rails (V_DDC = Vdd), RSNM(HVT)/RSNM(LVT) ~ 1.9x.
        let hvt = CellCharacterization::paper_with_rails(VtFlavor::Hvt, vdd(), vdd(), vdd());
        let lvt = CellCharacterization::paper_with_rails(VtFlavor::Lvt, vdd(), vdd(), vdd());
        let r = hvt.rsnm(Voltage::ZERO).volts() / lvt.rsnm(Voltage::ZERO).volts();
        assert!(r > 1.5 && r < 2.5, "RSNM HVT/LVT = {r} (paper: 1.9x)");
    }

    #[test]
    fn negative_gnd_raises_read_current_in_tables() {
        let c = CellCharacterization::paper_hvt(vdd());
        let base = c.read_current(Voltage::ZERO);
        let assisted = c.read_current(Voltage::from_millivolts(-240.0));
        let gain = assisted / base;
        // The fit formula gives 2.65x (the text says 4.3x; see
        // EXPERIMENTS.md for the discrepancy note).
        assert!(gain > 2.0 && gain < 3.5, "I_read gain = {gain:.2}");
    }

    #[test]
    fn min_margin_takes_the_weakest() {
        let c = CellCharacterization::paper_hvt(vdd());
        let m = c.min_margin(Voltage::ZERO);
        assert!(m <= c.hsnm());
        assert!(m <= c.rsnm(Voltage::ZERO));
        assert!(m <= c.write_margin());
    }

    #[test]
    fn derating_shrinks_margins_only() {
        let base = CellCharacterization::paper_hvt(vdd());
        let sigma = Voltage::from_millivolts(12.0);
        let derated = base.derated(3.0, sigma, sigma, sigma);
        assert!(derated.hsnm() < base.hsnm());
        assert!((base.hsnm() - derated.hsnm()).millivolts() - 36.0 < 1e-9);
        assert!(derated.rsnm(Voltage::ZERO) < base.rsnm(Voltage::ZERO));
        assert!(derated.write_margin() < base.write_margin());
        // Performance tables are untouched.
        assert_eq!(
            derated.read_current(Voltage::from_millivolts(-120.0)),
            base.read_current(Voltage::from_millivolts(-120.0))
        );
        assert_eq!(
            derated.write_delay(Voltage::from_millivolts(540.0)),
            base.write_delay(Voltage::from_millivolts(540.0))
        );
        // Derating clamps at zero rather than going negative.
        let floor = base.derated(100.0, sigma, sigma, sigma);
        assert_eq!(floor.hsnm(), Voltage::ZERO);
    }

    #[test]
    fn write_delay_improves_with_overdrive() {
        let c = CellCharacterization::paper_hvt(vdd());
        let slow = c.write_delay(Voltage::from_millivolts(450.0));
        let fast = c.write_delay(Voltage::from_millivolts(600.0));
        assert!(fast < slow);
        assert!((c.write_delay(Voltage::from_millivolts(540.0)).picoseconds() - 1.5).abs() < 0.1);
    }
}
