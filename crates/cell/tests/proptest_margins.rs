//! Property tests on the SNM geometry and characterization invariances.

use proptest::prelude::*;
use sram_cell::{butterfly_snm, Vtc};
use sram_units::Voltage;

/// A parametrized smooth inverter VTC.
fn inverter(vdd: f64, trip: f64, steepness: f64, n: usize) -> Vtc {
    let pts: Vec<(Voltage, Voltage)> = (0..=n)
        .map(|k| {
            let x = vdd * k as f64 / n as f64;
            let y = vdd / (1.0 + ((x - trip) / steepness).exp());
            (Voltage::from_volts(x), Voltage::from_volts(y))
        })
        .collect();
    Vtc::new(pts).expect("monotone inputs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SNM is symmetric in the two curves.
    #[test]
    fn snm_symmetric_in_curves(
        trip_a in 0.3f64..0.7,
        trip_b in 0.3f64..0.7,
        steep in 0.005f64..0.05,
    ) {
        let a = inverter(1.0, trip_a, steep, 200);
        let b = inverter(1.0, trip_b, steep, 200);
        let ab = butterfly_snm(&a, &b);
        let ba = butterfly_snm(&b, &a);
        match (ab, ba) {
            (Ok(x), Ok(y)) => prop_assert!((x.volts() - y.volts()).abs() < 5e-3),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "asymmetric outcome: {x:?} vs {y:?}"),
        }
    }

    /// Scaling both curves (axes and values) scales the SNM by the same
    /// factor — the geometry is homogeneous.
    #[test]
    fn snm_scales_with_supply(
        trip_frac in 0.35f64..0.65,
        steep in 0.005f64..0.03,
        scale in 0.5f64..2.0,
    ) {
        let base = inverter(1.0, trip_frac, steep, 300);
        let scaled = inverter(scale, trip_frac * scale, steep * scale, 300);
        let s1 = butterfly_snm(&base, &base).unwrap().volts();
        let s2 = butterfly_snm(&scaled, &scaled).unwrap().volts();
        prop_assert!(
            (s2 - s1 * scale).abs() < 0.02 * scale,
            "snm {s1} scaled to {s2}, expected {}",
            s1 * scale
        );
    }

    /// Steeper inverters have no smaller SNM (gain helps stability).
    #[test]
    fn steeper_is_no_worse(trip in 0.4f64..0.6, steep in 0.01f64..0.05) {
        let soft = inverter(1.0, trip, steep, 300);
        let sharp = inverter(1.0, trip, steep / 2.0, 300);
        let s_soft = butterfly_snm(&soft, &soft).unwrap();
        let s_sharp = butterfly_snm(&sharp, &sharp).unwrap();
        prop_assert!(s_sharp.volts() >= s_soft.volts() - 5e-3);
    }

    /// SNM never exceeds half the swing (the lobes partition the square).
    #[test]
    fn snm_bounded_by_half_swing(
        trip in 0.2f64..0.8,
        steep in 0.004f64..0.08,
    ) {
        let inv = inverter(1.0, trip, steep, 300);
        if let Ok(snm) = butterfly_snm(&inv, &inv) {
            prop_assert!(snm.volts() <= 0.5 + 1e-6, "snm = {snm}");
            prop_assert!(snm.volts() > 0.0);
        }
    }
}
