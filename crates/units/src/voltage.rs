//! Electric potential.

use crate::format::quantity;
use crate::{Current, Power};

quantity! {
    /// Electric potential in volts.
    ///
    /// Used for supply rails (`Vdd`), assist levels (`V_DDC`, `V_SSC`,
    /// `V_WL`, `V_BL`), node voltages, and noise margins.
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::Voltage;
    ///
    /// let vdd = Voltage::from_millivolts(450.0);
    /// let vssc = Voltage::from_millivolts(-100.0);
    /// assert_eq!((vdd - vssc).millivolts(), 550.0);
    /// ```
    Voltage, "V", volts, from_volts,
    (1e-3, millivolts, from_millivolts),
    (1e-6, microvolts, from_microvolts),
}

impl core::ops::Mul<Current> for Voltage {
    type Output = Power;
    fn mul(self, rhs: Current) -> Power {
        Power::from_watts(self.volts() * rhs.amps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Voltage::from_millivolts(450.0);
        assert!((v.volts() - 0.45).abs() < 1e-15);
        assert!((v.microvolts() - 450_000.0).abs() < 1e-6);
    }

    #[test]
    fn arithmetic() {
        let a = Voltage::from_volts(0.45);
        let b = Voltage::from_volts(0.1);
        assert!(((a + b).volts() - 0.55).abs() < 1e-15);
        assert!(((a - b).volts() - 0.35).abs() < 1e-15);
        assert!(((-b).volts() + 0.1).abs() < 1e-15);
        assert!(((a * 2.0).volts() - 0.9).abs() < 1e-15);
        assert!(((a / 2.0).volts() - 0.225).abs() < 1e-15);
        assert!((a / b - 4.5).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Voltage::from_millivolts(-240.0);
        let b = Voltage::ZERO;
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.abs(), Voltage::from_millivolts(240.0));
    }

    #[test]
    fn times_current_is_power() {
        let p = Voltage::from_volts(0.45) * Current::from_microamps(10.0);
        assert!((p.watts() - 4.5e-6).abs() < 1e-18);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(Voltage::from_millivolts(-100.0).to_string(), "-100.0000 mV");
    }

    #[test]
    fn lerp_interpolates() {
        let a = Voltage::ZERO;
        let b = Voltage::from_volts(1.0);
        assert_eq!(a.lerp(b, 0.25), Voltage::from_volts(0.25));
    }
}
