//! Engineering-notation formatting shared by all quantity newtypes.

/// Formats `value` (in the SI base unit `unit`) using engineering notation,
/// i.e. with an exponent that is a multiple of three and the matching SI
/// prefix (`f`, `p`, `n`, `µ`, `m`, none, `k`, `M`, `G`).
///
/// Values that fall outside the covered prefix range fall back to plain
/// scientific notation.
pub(crate) fn engineering(value: f64, unit: &str) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    const PREFIXES: [(f64, &str); 11] = [
        (1e-18, "a"),
        (1e-15, "f"),
        (1e-12, "p"),
        (1e-9, "n"),
        (1e-6, "µ"),
        (1e-3, "m"),
        (1e0, ""),
        (1e3, "k"),
        (1e6, "M"),
        (1e9, "G"),
        (1e12, "T"),
    ];
    let magnitude = value.abs();
    for &(scale, prefix) in PREFIXES.iter().rev() {
        if magnitude >= scale {
            let scaled = value / scale;
            return format!("{scaled:.4} {prefix}{unit}");
        }
    }
    format!("{value:e} {unit}")
}

/// Declares a physical-quantity newtype over `f64` with the shared
/// constructor/accessor/arithmetic boilerplate.
///
/// Generated API per quantity `Q` with base unit `base`:
/// * `Q::from_<base>(f64) -> Q`, `q.<base>() -> f64` plus one pair per
///   extra `(scale, name)` provided,
/// * `Q::ZERO`, `q.abs()`, `q.is_finite()`, `q.min(other)`, `q.max(other)`,
/// * `Add`, `Sub`, `Neg`, `Mul<f64>`, `f64 * Q`, `Div<f64>`,
///   `Div<Q> -> f64` (dimensionless ratio), `Sum`,
/// * `Display` in engineering notation, `Debug`, `Default`,
///   `PartialEq`/`PartialOrd`.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $symbol:literal, $base:ident, $from_base:ident
        $(, ($scale:expr, $unit:ident, $from_unit:ident))* $(,)?
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates a value from its magnitude in the SI base unit (", $symbol, ").")]
            #[must_use]
            pub const fn $from_base(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the magnitude in the SI base unit (", $symbol, ").")]
            #[must_use]
            pub const fn $base(self) -> f64 {
                self.0
            }

            $(
                #[doc = concat!("Creates a value from the scaled unit (×", stringify!($scale), " ", $symbol, ").")]
                #[must_use]
                pub fn $from_unit(value: f64) -> Self {
                    Self(value * $scale)
                }

                #[doc = concat!("Returns the magnitude in the scaled unit (×", stringify!($scale), " ", $symbol, ").")]
                #[must_use]
                pub fn $unit(self) -> f64 {
                    self.0 / $scale
                }
            )*

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns `true` when the magnitude is neither NaN nor infinite.
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of the two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of the two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Linear interpolation between `self` (at `t = 0`) and `other`
            /// (at `t = 1`).
            #[must_use]
            pub fn lerp(self, other: Self, t: f64) -> Self {
                Self(self.0 + (other.0 - self.0) * t)
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div<$name> for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str(&crate::engineering(self.0, $symbol))
            }
        }
    };
}

pub(crate) use quantity;

#[cfg(test)]
mod tests {
    use super::engineering;

    #[test]
    fn zero_formats_plainly() {
        assert_eq!(engineering(0.0, "V"), "0 V");
    }

    #[test]
    fn prefixes_are_selected() {
        assert_eq!(engineering(0.45, "V"), "450.0000 mV");
        assert_eq!(engineering(1.692e-9, "W"), "1.6920 nW");
        assert_eq!(engineering(3.2e-14, "F"), "32.0000 fF");
        assert_eq!(engineering(1.5e3, "Hz"), "1.5000 kHz");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(engineering(-0.1, "V"), "-100.0000 mV");
    }

    #[test]
    fn non_finite_values_do_not_panic() {
        assert!(engineering(f64::NAN, "V").contains("NaN"));
        assert!(engineering(f64::INFINITY, "V").contains("inf"));
    }
}
