//! Frequency.

use crate::format::quantity;
use crate::Time;

quantity! {
    /// Frequency in hertz.
    ///
    /// Convenience view of array delays as access rates (the paper's
    /// comparison SRAMs are specified in GHz).
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::Time;
    ///
    /// let delay = Time::from_picoseconds(400.0);
    /// assert!((delay.to_frequency().gigahertz() - 2.5).abs() < 1e-9);
    /// ```
    Frequency, "Hz", hertz, from_hertz,
    (1e3, kilohertz, from_kilohertz),
    (1e6, megahertz, from_megahertz),
    (1e9, gigahertz, from_gigahertz),
}

impl Frequency {
    /// The period `1/f`.
    ///
    /// # Panics
    ///
    /// Panics on a zero (or NaN) frequency.
    #[must_use]
    pub fn to_period(self) -> Time {
        // `abs() > 0.0` rather than `!= 0.0`: also rejects NaN.
        assert!(self.hertz().abs() > 0.0, "zero frequency has no period");
        Time::from_seconds(1.0 / self.hertz())
    }
}

impl Time {
    /// The access rate `1/t` a delay supports.
    ///
    /// # Panics
    ///
    /// Panics on a zero (or NaN) time.
    #[must_use]
    pub fn to_frequency(self) -> Frequency {
        // `abs() > 0.0` rather than `!= 0.0`: also rejects NaN.
        assert!(self.seconds().abs() > 0.0, "zero time has no frequency");
        Frequency::from_hertz(1.0 / self.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_with_time() {
        let t = Time::from_nanoseconds(2.0);
        let f = t.to_frequency();
        assert!((f.megahertz() - 500.0).abs() < 1e-9);
        assert!((f.to_period().nanoseconds() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero time")]
    fn zero_time_panics() {
        let _ = Time::ZERO.to_frequency();
    }

    #[test]
    fn display() {
        assert_eq!(Frequency::from_gigahertz(1.5).to_string(), "1.5000 GHz");
    }
}
