//! Time / delay.

use crate::format::quantity;
use crate::{Energy, EnergyDelay, Power};

quantity! {
    /// Time (delay) in seconds.
    ///
    /// Used for every delay component of Table 3 (`D_rd`, `D_wr`, bitline,
    /// wordline, decoder, sense-amplifier, precharge delays).
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::Time;
    ///
    /// let d_bl = Time::from_picoseconds(35.0);
    /// let d_sa = Time::from_picoseconds(12.0);
    /// assert!(((d_bl + d_sa).picoseconds() - 47.0).abs() < 1e-9);
    /// ```
    Time, "s", seconds, from_seconds,
    (1e-3, milliseconds, from_milliseconds),
    (1e-6, microseconds, from_microseconds),
    (1e-9, nanoseconds, from_nanoseconds),
    (1e-12, picoseconds, from_picoseconds),
    (1e-15, femtoseconds, from_femtoseconds),
}

impl core::ops::Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy::from_joules(self.seconds() * rhs.watts())
    }
}

impl core::ops::Mul<Energy> for Time {
    type Output = EnergyDelay;
    fn mul(self, rhs: Energy) -> EnergyDelay {
        EnergyDelay::from_joule_seconds(self.seconds() * rhs.joules())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scales() {
        let t = Time::from_picoseconds(1.5);
        assert!((t.seconds() - 1.5e-12).abs() < 1e-24);
        assert!((t.femtoseconds() - 1500.0).abs() < 1e-6);
    }

    #[test]
    fn time_times_power_is_energy() {
        let e = Time::from_nanoseconds(2.0) * Power::from_nanowatts(0.5);
        assert!((e.joules() - 1e-18).abs() < 1e-30);
    }

    #[test]
    fn time_times_energy_is_edp() {
        let edp = Time::from_nanoseconds(1.0) * Energy::from_femtojoules(3.0);
        assert!((edp.joule_seconds() - 3e-24).abs() < 1e-36);
    }

    #[test]
    fn max_picks_worst_case_delay() {
        let read = Time::from_picoseconds(120.0);
        let write = Time::from_picoseconds(90.0);
        assert_eq!(read.max(write), read); // D_array = max(D_rd, D_wr)
    }
}
