//! Energy-delay product.

use crate::format::quantity;
use crate::{Energy, Time};

quantity! {
    /// Energy-delay product in joule-seconds.
    ///
    /// The objective the paper minimizes: `EDP = E_array × D_array`.
    /// A dedicated type (rather than reusing a bare `f64`) keeps objective
    /// values from being confused with energies or delays in optimizer code.
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::{Energy, Time};
    ///
    /// let lvt = Energy::from_femtojoules(40.0) * Time::from_picoseconds(100.0);
    /// let hvt = Energy::from_femtojoules(15.0) * Time::from_picoseconds(112.0);
    /// assert!(hvt < lvt); // HVT wins on EDP despite the delay penalty
    /// ```
    EnergyDelay, "J·s", joule_seconds, from_joule_seconds,
    (1e-27, femtojoule_picoseconds, from_femtojoule_picoseconds),
}

impl core::ops::Div<Time> for EnergyDelay {
    type Output = Energy;
    fn div(self, rhs: Time) -> Energy {
        Energy::from_joules(self.joule_seconds() / rhs.seconds())
    }
}

impl core::ops::Div<Energy> for EnergyDelay {
    type Output = Time;
    fn div(self, rhs: Energy) -> Time {
        Time::from_seconds(self.joule_seconds() / rhs.joules())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizes_back_to_energy_and_delay() {
        let e = Energy::from_femtojoules(12.0);
        let d = Time::from_picoseconds(150.0);
        let edp = e * d;
        assert!(((edp / d).femtojoules() - 12.0).abs() < 1e-9);
        assert!(((edp / e).picoseconds() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_ratio() {
        let lvt = EnergyDelay::from_joule_seconds(1.0e-27);
        let hvt = EnergyDelay::from_joule_seconds(0.41e-27);
        let saving = 1.0 - hvt / lvt;
        assert!((saving - 0.59).abs() < 1e-12); // the paper's 59% headline
    }
}
