//! Electric current.

use crate::format::quantity;
use crate::{Charge, Power, Time, Voltage};

quantity! {
    /// Electric current in amperes.
    ///
    /// Used for device drive currents (ION), leakage (IOFF), and the cell
    /// read current `I_read` central to bitline-delay analysis.
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::Current;
    ///
    /// let i_on = Current::from_microamps(30.0);
    /// let i_off = Current::from_nanoamps(1.0);
    /// assert!((i_on / i_off - 30_000.0).abs() < 1e-6);
    /// ```
    Current, "A", amps, from_amps,
    (1e-3, milliamps, from_milliamps),
    (1e-6, microamps, from_microamps),
    (1e-9, nanoamps, from_nanoamps),
    (1e-12, picoamps, from_picoamps),
}

impl core::ops::Mul<Voltage> for Current {
    type Output = Power;
    fn mul(self, rhs: Voltage) -> Power {
        Power::from_watts(self.amps() * rhs.volts())
    }
}

impl core::ops::Mul<Time> for Current {
    type Output = Charge;
    fn mul(self, rhs: Time) -> Charge {
        Charge::from_coulombs(self.amps() * rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scales() {
        let i = Current::from_microamps(12.5);
        assert!((i.amps() - 12.5e-6).abs() < 1e-18);
        assert!((i.nanoamps() - 12_500.0).abs() < 1e-9);
    }

    #[test]
    fn current_times_voltage_is_power() {
        let p = Current::from_nanoamps(3.76) * Voltage::from_volts(0.45);
        assert!((p.nanowatts() - 1.692).abs() < 1e-9);
    }

    #[test]
    fn current_times_time_is_charge() {
        let q = Current::from_microamps(1.0) * Time::from_nanoseconds(1.0);
        assert!((q.coulombs() - 1e-15).abs() < 1e-27);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Current = [1.0, 2.0, 3.0]
            .iter()
            .map(|&x| Current::from_microamps(x))
            .sum();
        assert!((total.microamps() - 6.0).abs() < 1e-12);
    }
}
