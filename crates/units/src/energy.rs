//! Energy.

use crate::format::quantity;
use crate::{EnergyDelay, Power, Time};

quantity! {
    /// Energy in joules.
    ///
    /// Used for the switching/leakage energy components of Table 3 and the
    /// total array energy `E_array` of Eq. (5).
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::{Energy, Time};
    ///
    /// let e_array = Energy::from_femtojoules(12.0);
    /// let d_array = Time::from_picoseconds(150.0);
    /// let edp = e_array * d_array;
    /// assert!(edp.joule_seconds() > 0.0);
    /// ```
    Energy, "J", joules, from_joules,
    (1e-12, picojoules, from_picojoules),
    (1e-15, femtojoules, from_femtojoules),
    (1e-18, attojoules, from_attojoules),
}

impl core::ops::Mul<Time> for Energy {
    type Output = EnergyDelay;
    fn mul(self, rhs: Time) -> EnergyDelay {
        EnergyDelay::from_joule_seconds(self.joules() * rhs.seconds())
    }
}

impl core::ops::Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        Power::from_watts(self.joules() / rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scales() {
        let e = Energy::from_femtojoules(2.5);
        assert!((e.joules() - 2.5e-15).abs() < 1e-27);
        assert!((e.attojoules() - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn eq3_weighted_mix() {
        // E_sw = beta*E_rd + (1-beta)*E_wr
        let e_rd = Energy::from_femtojoules(10.0);
        let e_wr = Energy::from_femtojoules(6.0);
        let beta = 0.5;
        let mixed = e_rd * beta + e_wr * (1.0 - beta);
        assert!((mixed.femtojoules() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_times_time_is_edp() {
        let edp = Energy::from_femtojoules(1.0) * Time::from_picoseconds(1.0);
        assert!((edp.joule_seconds() - 1e-27).abs() < 1e-39);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_femtojoules(1.0) / Time::from_nanoseconds(1.0);
        assert!((p.microwatts() - 1.0).abs() < 1e-12);
    }
}
