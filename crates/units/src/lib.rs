//! Typed physical quantities for SRAM device/circuit/architecture modeling.
//!
//! Every quantity in the `sram-edp` workspace is carried by a dedicated
//! newtype over `f64` in SI base units ([`Voltage`] in volts, [`Current`]
//! in amperes, [`Capacitance`] in farads, …). The newtypes statically
//! prevent unit-confusion bugs (e.g. adding a delay to an energy) while the
//! implemented operator traits encode exactly the physically meaningful
//! combinations used by the paper's equations:
//!
//! * `C · V = Q` — charge moved on an interconnect,
//! * `Q / I = t` — Eq. (1) delay `D = C·ΔV / I`,
//! * `C · V · V = E` — Eq. (1) switching energy `E = C·V·ΔV`,
//! * `V · I = P`, `P · t = E`, `E · t = EDP`.
//!
//! # Examples
//!
//! Computing a bitline delay and switching energy from Eq. (1) of the paper:
//!
//! ```
//! use sram_units::{Capacitance, Current, Voltage};
//!
//! let c_bl = Capacitance::from_femtofarads(5.0);
//! let delta_v = Voltage::from_millivolts(120.0);
//! let i_read = Current::from_microamps(15.0);
//!
//! let delay = c_bl * delta_v / i_read; // Time
//! let energy = c_bl * Voltage::from_millivolts(450.0) * delta_v; // Energy
//!
//! assert!((delay.picoseconds() - 40.0).abs() < 1e-9);
//! assert!(energy.joules() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitance;
mod charge;
mod current;
mod edp;
mod energy;
mod format;
mod frequency;
mod power;
mod time;
mod voltage;

pub use capacitance::Capacitance;
pub use charge::Charge;
pub use current::Current;
pub use edp::EnergyDelay;
pub use energy::Energy;
pub use frequency::Frequency;
pub use power::Power;
pub use time::Time;
pub use voltage::Voltage;

pub(crate) use format::engineering;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_delay_round_trip() {
        // D = C * dV / I
        let c = Capacitance::from_femtofarads(10.0);
        let dv = Voltage::from_millivolts(100.0);
        let i = Current::from_microamps(1.0);
        let d = c * dv / i;
        // 10e-15 * 0.1 / 1e-6 = 1e-9 s
        assert!((d.seconds() - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn eq1_energy_round_trip() {
        // E = C * V * dV
        let c = Capacitance::from_femtofarads(10.0);
        let v = Voltage::from_millivolts(450.0);
        let dv = Voltage::from_millivolts(120.0);
        let e = c * v * dv;
        assert!((e.joules() - 10e-15 * 0.45 * 0.12).abs() < 1e-30);
    }

    #[test]
    fn power_energy_edp_chain() {
        let p = Voltage::from_volts(0.45) * Current::from_microamps(2.0);
        assert!((p.watts() - 0.9e-6).abs() < 1e-18);
        let e = p * Time::from_nanoseconds(1.0);
        assert!((e.joules() - 0.9e-15).abs() < 1e-27);
        let edp = e * Time::from_nanoseconds(2.0);
        assert!((edp.joule_seconds() - 1.8e-24).abs() < 1e-36);
    }

    #[test]
    fn types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Voltage>();
        assert_send_sync::<Current>();
        assert_send_sync::<Capacitance>();
        assert_send_sync::<Charge>();
        assert_send_sync::<Time>();
        assert_send_sync::<Power>();
        assert_send_sync::<Energy>();
        assert_send_sync::<EnergyDelay>();
    }
}
