//! Power.

use crate::format::quantity;
use crate::{Energy, Time};

quantity! {
    /// Power in watts.
    ///
    /// Used for SRAM cell leakage (`P_leak,sram` — 1.692 nW for 6T-LVT and
    /// 0.082 nW for 6T-HVT at the nominal 450 mV in the paper).
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::{Power, Time};
    ///
    /// let p_leak = Power::from_nanowatts(0.082);
    /// let e_leak = p_leak * Time::from_nanoseconds(0.5);
    /// assert!(e_leak.joules() > 0.0);
    /// ```
    Power, "W", watts, from_watts,
    (1e-3, milliwatts, from_milliwatts),
    (1e-6, microwatts, from_microwatts),
    (1e-9, nanowatts, from_nanowatts),
    (1e-12, picowatts, from_picowatts),
}

impl core::ops::Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy::from_joules(self.watts() * rhs.seconds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scales() {
        let p = Power::from_nanowatts(1.692);
        assert!((p.watts() - 1.692e-9).abs() < 1e-21);
        assert!((p.picowatts() - 1692.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_energy_eq4() {
        // E_leak = M * P_leak * D_array (Eq. 4) for a 1-bit array.
        let e = Power::from_nanowatts(0.082) * Time::from_nanoseconds(1.0);
        assert!((e.joules() - 0.082e-18).abs() < 1e-30);
    }

    #[test]
    fn scalar_scaling() {
        // M cells leak M times as much.
        let cell = Power::from_nanowatts(0.082);
        let array = cell * 8192.0;
        assert!((array.microwatts() - 0.082 * 8.192).abs() < 1e-9);
    }
}
