//! Capacitance.

use crate::format::quantity;
use crate::{Charge, Voltage};

quantity! {
    /// Capacitance in farads.
    ///
    /// Used for device gate/drain capacitances and the interconnect
    /// capacitances of Table 1 (`C_CVDD`, `C_CVSS`, `C_WL`, `C_COL`,
    /// `C_BL`).
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::{Capacitance, Voltage};
    ///
    /// let c_bl = Capacitance::from_femtofarads(4.2);
    /// let q = c_bl * Voltage::from_millivolts(120.0);
    /// assert!(q.coulombs() > 0.0);
    /// ```
    Capacitance, "F", farads, from_farads,
    (1e-12, picofarads, from_picofarads),
    (1e-15, femtofarads, from_femtofarads),
    (1e-18, attofarads, from_attofarads),
}

impl core::ops::Mul<Voltage> for Capacitance {
    type Output = Charge;
    fn mul(self, rhs: Voltage) -> Charge {
        Charge::from_coulombs(self.farads() * rhs.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scales() {
        let c = Capacitance::from_femtofarads(36.55);
        assert!((c.farads() - 36.55e-15).abs() < 1e-27);
        assert!((c.attofarads() - 36_550.0).abs() < 1e-6);
    }

    #[test]
    fn c_times_v_is_charge() {
        let q = Capacitance::from_femtofarads(1.0) * Voltage::from_volts(1.0);
        assert!((q.coulombs() - 1e-15).abs() < 1e-27);
    }

    #[test]
    fn accumulates_with_sum() {
        let parts = [0.5, 0.25, 0.25].map(Capacitance::from_femtofarads);
        let total: Capacitance = parts.iter().sum();
        assert!((total.femtofarads() - 1.0).abs() < 1e-12);
    }
}
