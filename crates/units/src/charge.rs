//! Electric charge.

use crate::format::quantity;
use crate::{Current, Energy, Time, Voltage};

quantity! {
    /// Electric charge in coulombs.
    ///
    /// Appears as the intermediate `C·ΔV` product of Eq. (1): dividing a
    /// charge by the driver current yields the interconnect delay.
    ///
    /// # Examples
    ///
    /// ```
    /// use sram_units::{Capacitance, Current, Voltage};
    ///
    /// let q = Capacitance::from_femtofarads(5.0) * Voltage::from_millivolts(120.0);
    /// let d = q / Current::from_microamps(15.0);
    /// assert!((d.picoseconds() - 40.0).abs() < 1e-9);
    /// ```
    Charge, "C", coulombs, from_coulombs,
    (1e-15, femtocoulombs, from_femtocoulombs),
}

impl core::ops::Div<Current> for Charge {
    type Output = Time;
    fn div(self, rhs: Current) -> Time {
        Time::from_seconds(self.coulombs() / rhs.amps())
    }
}

impl core::ops::Div<Time> for Charge {
    type Output = Current;
    fn div(self, rhs: Time) -> Current {
        Current::from_amps(self.coulombs() / rhs.seconds())
    }
}

impl core::ops::Mul<Voltage> for Charge {
    type Output = Energy;
    fn mul(self, rhs: Voltage) -> Energy {
        Energy::from_joules(self.coulombs() * rhs.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_over_current_is_time() {
        let t = Charge::from_coulombs(1e-15) / Current::from_microamps(1.0);
        assert!((t.nanoseconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_over_time_is_current() {
        let i = Charge::from_coulombs(1e-12) / Time::from_nanoseconds(1.0);
        assert!((i.milliamps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charge_times_voltage_is_energy() {
        let e = Charge::from_femtocoulombs(2.0) * Voltage::from_volts(0.5);
        assert!((e.femtojoules() - 1.0).abs() < 1e-12);
    }
}
