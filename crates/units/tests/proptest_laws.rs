//! Property tests: the quantity algebra obeys the usual laws.

use proptest::prelude::*;
use sram_units::{Capacitance, Current, Energy, Power, Time, Voltage};

fn finite() -> impl Strategy<Value = f64> {
    -1e3f64..1e3
}

fn positive() -> impl Strategy<Value = f64> {
    1e-6f64..1e3
}

proptest! {
    #[test]
    fn addition_commutes(a in finite(), b in finite()) {
        let x = Voltage::from_volts(a);
        let y = Voltage::from_volts(b);
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn addition_associates_to_fp_tolerance(a in finite(), b in finite(), c in finite()) {
        let (x, y, z) = (
            Energy::from_joules(a),
            Energy::from_joules(b),
            Energy::from_joules(c),
        );
        let l = ((x + y) + z).joules();
        let r = (x + (y + z)).joules();
        prop_assert!((l - r).abs() <= 1e-12 * (l.abs() + r.abs() + 1.0));
    }

    #[test]
    fn scalar_distributes(a in finite(), b in finite(), k in finite()) {
        let x = Time::from_seconds(a);
        let y = Time::from_seconds(b);
        let l = ((x + y) * k).seconds();
        let r = (x * k + y * k).seconds();
        prop_assert!((l - r).abs() <= 1e-9 * (l.abs() + r.abs() + 1.0));
    }

    #[test]
    fn subtraction_inverts_addition(a in finite(), b in finite()) {
        let x = Current::from_amps(a);
        let y = Current::from_amps(b);
        prop_assert!(((x + y - y).amps() - a).abs() <= 1e-9 * (a.abs() + b.abs() + 1.0));
    }

    #[test]
    fn eq1_delay_energy_consistency(c in positive(), v in positive(), dv in positive(), i in positive()) {
        // D = C dV / I and E = C V dV imply E = V * I * D.
        let cap = Capacitance::from_femtofarads(c);
        let vv = Voltage::from_volts(v);
        let dvv = Voltage::from_volts(dv);
        let ii = Current::from_microamps(i);
        let d = cap * dvv / ii;
        let e = cap * vv * dvv;
        let e2: Energy = (vv * ii) * d;
        prop_assert!((e.joules() - e2.joules()).abs() <= 1e-9 * e.joules().abs());
    }

    #[test]
    fn power_time_round_trip(p in positive(), t in positive()) {
        let power = Power::from_nanowatts(p);
        let time = Time::from_nanoseconds(t);
        let energy = power * time;
        let back = energy / time;
        prop_assert!((back.watts() - power.watts()).abs() <= 1e-12 * power.watts());
    }

    #[test]
    fn dimensionless_ratio_cancels_units(a in positive(), b in positive()) {
        let r = Voltage::from_volts(a) / Voltage::from_volts(b);
        prop_assert!((r - a / b).abs() <= 1e-12 * (a / b));
    }

    #[test]
    fn min_max_are_ordered(a in finite(), b in finite()) {
        let x = Voltage::from_volts(a);
        let y = Voltage::from_volts(b);
        prop_assert!(x.min(y) <= x.max(y));
        prop_assert!(x.min(y) == x || x.min(y) == y);
    }

    #[test]
    fn lerp_endpoints(a in finite(), b in finite()) {
        let x = Voltage::from_volts(a);
        let y = Voltage::from_volts(b);
        prop_assert_eq!(x.lerp(y, 0.0), x);
        let end = x.lerp(y, 1.0).volts();
        prop_assert!((end - b).abs() <= 1e-9 * (a.abs() + b.abs() + 1.0));
    }

    #[test]
    fn sum_matches_fold(values in proptest::collection::vec(finite(), 0..20)) {
        let total: Energy = values.iter().map(|&v| Energy::from_joules(v)).sum();
        let folded = values
            .iter()
            .fold(Energy::ZERO, |acc, &v| acc + Energy::from_joules(v));
        prop_assert!((total.joules() - folded.joules()).abs() <= 1e-9);
    }

    #[test]
    fn display_never_panics(v in -1e20f64..1e20) {
        let _ = Voltage::from_volts(v).to_string();
        let _ = Energy::from_joules(v).to_string();
    }
}
