//! Hedged-request end-to-end test: under an injected `cell.slow`
//! fault on the primary's characterization path, the router fires a
//! hedge, exactly one reply reaches the client, and the losing attempt
//! observes the shared cancel token.
//!
//! Lives in `tests/` (its own process) because the fault registry is
//! process-global: installing a plan here must not leak into the
//! library unit tests.

use std::time::{Duration, Instant};

use sram_cluster::{Router, RouterConfig};
use sram_faults::{FaultPlan, FaultRule};
use sram_serve::{Client, Json};

#[test]
fn hedge_fires_yields_one_reply_and_cancels_the_loser() {
    // The first characterization anywhere in the process sleeps 400 ms
    // — far past the 5 ms hedge floor, so whichever node draws it
    // loses the race by a margin no scheduler jitter can close.
    sram_faults::install(
        &FaultPlan::new(0x00DA_C208).rule(FaultRule::always("cell.slow", 1).with_latency_ms(400)),
    );

    let node_a = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).unwrap();
    let node_b = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).unwrap();
    let router = Router::start(RouterConfig {
        nodes: vec![
            node_a.local_addr().to_string(),
            node_b.local_addr().to_string(),
        ],
        replicas: 2,
        hedge_ms: 5,
        ..RouterConfig::default()
    })
    .unwrap();

    let fired_before = sram_probe::counter("cluster.hedge.fired").get();
    let cancelled_before = sram_probe::counter("cluster.hedge.cancelled").get();

    let mut client = Client::connect(router.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(120))).unwrap();
    let reply = client
        .call_line(
            r#"{"id":"h1","op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#,
        )
        .unwrap();
    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(reply.get("id").and_then(Json::as_str), Some("h1"));
    assert!(
        reply.get("via").and_then(Json::as_str).is_some(),
        "forwarded reply must be stamped with its route: {}",
        reply.render()
    );

    // The cold characterization dwarfs the 5 ms hedge floor, so the
    // hedge must have fired regardless of which node drew the fault.
    assert!(
        sram_probe::counter("cluster.hedge.fired").get() > fired_before,
        "hedge never fired"
    );

    // Exactly one reply: the very next line on this connection answers
    // the next request, not a stray duplicate of the first.
    let stats = client
        .call_line(r#"{"id":"h2","op":"cluster-stats"}"#)
        .unwrap();
    assert_eq!(
        stats.get("op").and_then(Json::as_str),
        Some("cluster-stats"),
        "a duplicate reply was queued ahead of the follow-up: {}",
        stats.render()
    );
    assert_eq!(stats.get("id").and_then(Json::as_str), Some("h2"));

    // Loser-cancel: the slow attempt finishes its 400 ms sleep after
    // the winner already answered, observes the cancelled token, and
    // discards its reply.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if sram_probe::counter("cluster.hedge.cancelled").get() > cancelled_before {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "loser never observed the cancel token"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    router.shutdown();
    node_a.shutdown();
    node_b.shutdown();
    sram_faults::uninstall();
}
