//! Metrics federation: cluster-wide quantiles from per-node histograms.
//!
//! Each node's `metrics` op exports its windowed `LogLinear` histograms
//! as sparse `[bucket, count]` arrays. Because the bucket layout is
//! identical on every node, the histograms merge losslessly: the
//! collector polls every node, sums buckets per metric with
//! [`QuantileSnapshot::merge`], and reads cluster-wide p50/p90/p99 off
//! the merged distribution — still within the LogLinear
//! `MAX_QUANTILE_RELATIVE_ERROR` (1/32) bound, which averaging
//! per-node percentiles would not be. The same poll collects each
//! node's `stats` cache counters (the per-shard hit breakdown) and its
//! `serve.slo.*` totals, so the SLO burn is computed over the merged
//! distribution of the whole cluster rather than per node.
//!
//! The router answers `cluster-metrics` and `cluster-health` from a
//! fresh poll on every call — never cached: a stale quantile plane is
//! worse than a slow one.

use std::collections::BTreeMap;

use sram_probe::telemetry::QuantileSnapshot;
use sram_serve::{Json, ServeError};

/// SLO burn at or above this is a `degraded` verdict (mirrors the
/// node-local threshold in `sram-serve`).
pub const BURN_DEGRADED: f64 = 1.0;

/// SLO burn at or above this is an `unhealthy` verdict.
pub const BURN_UNHEALTHY: f64 = 10.0;

/// One node's parsed `metrics` + `stats` poll.
#[derive(Debug, Clone, Default)]
pub struct NodePoll {
    /// Raw histograms by metric name.
    pub quantiles: BTreeMap<String, QuantileSnapshot>,
    /// Counter lifetime totals by name (the `serve.slo.*` family is
    /// what the merged burn reads).
    pub counters: BTreeMap<String, u64>,
    /// The node's cache counters from `stats` (hits, misses, …).
    pub cache: Option<Json>,
    /// Poll failure, when the node did not answer.
    pub error: Option<String>,
}

/// A full cluster sweep: per-node polls plus the merged histograms.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Per-node polls in configuration order.
    pub nodes: Vec<(String, NodePoll)>,
    /// Bucket-wise merged histograms across every answering node.
    pub merged: BTreeMap<String, QuantileSnapshot>,
}

/// Parses one exported quantile object (`{"count":…,"sum":…,
/// "buckets":[[index,count],…]}`) back into a mergeable snapshot.
#[must_use]
pub fn parse_snapshot(q: &Json) -> QuantileSnapshot {
    let mut snap = QuantileSnapshot {
        count: q.get("count").and_then(Json::as_u64).unwrap_or(0),
        sum: q.get("sum").and_then(Json::as_u64).unwrap_or(0),
        ..QuantileSnapshot::default()
    };
    if let Some(buckets) = q.get("buckets").and_then(Json::as_array) {
        for pair in buckets {
            if let Some(entries) = pair.as_array() {
                if let (Some(idx), Some(count)) = (
                    entries.first().and_then(Json::as_u64),
                    entries.get(1).and_then(Json::as_u64),
                ) {
                    if let Ok(idx) = u16::try_from(idx) {
                        snap.buckets.push((idx, count));
                    }
                }
            }
        }
    }
    snap
}

fn parse_metrics_reply(reply: &Json, poll: &mut NodePoll) {
    let Some(result) = reply.get("result") else {
        poll.error = Some("metrics reply carries no result".into());
        return;
    };
    if let Some(Json::Obj(quantiles)) = result.get("quantiles") {
        for (name, q) in quantiles {
            poll.quantiles.insert(name.clone(), parse_snapshot(q));
        }
    }
    if let Some(Json::Obj(counters)) = result.get("counters") {
        for (name, stat) in counters {
            if let Some(total) = stat.get("total").and_then(Json::as_u64) {
                poll.counters.insert(name.clone(), total);
            }
        }
    }
}

/// Polls every node through `call` (address, request line → reply) and
/// merges the results. Poll failures are recorded per node — a dead
/// shard must show up as a hole in the plane, not vanish from it.
pub fn poll<F>(nodes: &[String], mut call: F) -> ClusterMetrics
where
    F: FnMut(&str, &str) -> Result<Json, ServeError>,
{
    // Ungated: the collector must count with probes off.
    sram_probe::counter("cluster.metrics.polls").inc();
    let mut sweep = ClusterMetrics::default();
    for node in nodes {
        let mut poll = NodePoll::default();
        match call(node, r#"{"op":"metrics"}"#) {
            Ok(reply) => parse_metrics_reply(&reply, &mut poll),
            Err(e) => poll.error = Some(e.to_string()),
        }
        if poll.error.is_none() {
            match call(node, r#"{"op":"stats"}"#) {
                Ok(reply) => {
                    poll.cache = reply.get("result").and_then(|r| r.get("cache")).cloned();
                }
                Err(e) => poll.error = Some(e.to_string()),
            }
        }
        if poll.error.is_some() {
            sram_probe::counter("cluster.metrics.poll_errors").inc();
        }
        for (name, snap) in &poll.quantiles {
            let slot = sweep.merged.entry(name.clone()).or_default();
            *slot = slot.merge(snap);
        }
        sweep.nodes.push((node.clone(), poll));
    }
    if let Some(latency) = sweep.merged.get("serve.request.latency_ns") {
        // Ungated gauges: CI asserts these keys exist in --probe-json.
        sram_probe::gauge("cluster.metrics.merged_p50").set(latency.quantile(0.50));
        sram_probe::gauge("cluster.metrics.merged_p90").set(latency.quantile(0.90));
        sram_probe::gauge("cluster.metrics.merged_p99").set(latency.quantile(0.99));
    }
    sweep
}

/// Sums the `serve.slo.<op>.total` / `.breach` counter pairs across
/// nodes and computes the burn over the merged totals.
#[must_use]
pub fn merged_slo(sweep: &ClusterMetrics) -> BTreeMap<String, (u64, u64, f64)> {
    let mut totals: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (_, poll) in &sweep.nodes {
        for (name, &value) in &poll.counters {
            let Some(rest) = name.strip_prefix("serve.slo.") else {
                continue;
            };
            if let Some(op) = rest.strip_suffix(".total") {
                totals.entry(op.to_string()).or_default().0 += value;
            } else if let Some(op) = rest.strip_suffix(".breach") {
                totals.entry(op.to_string()).or_default().1 += value;
            }
        }
    }
    totals
        .into_iter()
        .map(|(op, (total, breach))| {
            let burn = sram_serve::slo::burn_rate(breach, total);
            (op, (total, breach, burn))
        })
        .collect()
}

fn quantile_json(snap: &QuantileSnapshot) -> Json {
    let buckets = snap
        .buckets
        .iter()
        .map(|&(idx, count)| Json::Arr(vec![Json::Num(f64::from(idx)), Json::Num(count as f64)]))
        .collect();
    Json::Obj(vec![
        ("count".into(), Json::Num(snap.count as f64)),
        ("sum".into(), Json::Num(snap.sum as f64)),
        ("p50".into(), Json::Num(snap.quantile(0.50))),
        ("p90".into(), Json::Num(snap.quantile(0.90))),
        ("p99".into(), Json::Num(snap.quantile(0.99))),
        ("buckets".into(), Json::Arr(buckets)),
    ])
}

fn slo_json(sweep: &ClusterMetrics) -> Json {
    Json::Obj(
        merged_slo(sweep)
            .into_iter()
            .map(|(op, (total, breach, burn))| {
                (
                    op,
                    Json::Obj(vec![
                        ("total".into(), Json::Num(total as f64)),
                        ("breach".into(), Json::Num(breach as f64)),
                        ("burn".into(), Json::Num(burn)),
                    ]),
                )
            })
            .collect(),
    )
}

/// The `cluster-metrics` reply: merged histograms with cluster-wide
/// percentiles, the per-shard cache breakdown, the merged SLO table,
/// and per-node poll status.
#[must_use]
pub fn cluster_metrics_json(sweep: &ClusterMetrics, id: Option<&str>) -> Json {
    let merged: Vec<(String, Json)> = sweep
        .merged
        .iter()
        .map(|(name, snap)| (name.clone(), quantile_json(snap)))
        .collect();
    let mut shards: Vec<(String, Json)> = Vec::with_capacity(sweep.nodes.len());
    let mut nodes: Vec<(String, Json)> = Vec::with_capacity(sweep.nodes.len());
    for (node, poll) in &sweep.nodes {
        if let Some(error) = &poll.error {
            nodes.push((node.clone(), Json::Str(error.clone())));
        } else {
            nodes.push((node.clone(), Json::Str("ok".into())));
        }
        if let Some(cache) = &poll.cache {
            let hits = cache.get("hits").and_then(Json::as_f64).unwrap_or(0.0);
            let misses = cache.get("misses").and_then(Json::as_f64).unwrap_or(0.0);
            let looked = hits + misses;
            let mut pairs = match cache {
                Json::Obj(pairs) => pairs.clone(),
                _ => Vec::new(),
            };
            pairs.push((
                "hit_rate".into(),
                Json::Num(if looked > 0.0 { hits / looked } else { 0.0 }),
            ));
            shards.push((node.clone(), Json::Obj(pairs)));
        }
    }
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str("cluster-metrics".into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.extend([
        ("nodes".to_owned(), Json::Obj(nodes)),
        ("merged".to_owned(), Json::Obj(merged)),
        ("shards".to_owned(), Json::Obj(shards)),
        ("slo".to_owned(), slo_json(sweep)),
    ]);
    Json::Obj(pairs)
}

/// The `cluster-health` reply: a verdict over the merged SLO burn plus
/// poll reachability, with reasons.
#[must_use]
pub fn cluster_health_json(sweep: &ClusterMetrics, id: Option<&str>) -> Json {
    let mut reasons: Vec<String> = Vec::new();
    let failed = sweep
        .nodes
        .iter()
        .filter(|(_, p)| p.error.is_some())
        .count();
    let polled = sweep.nodes.len();
    let mut verdict = "ok";
    if failed > 0 {
        verdict = "degraded";
        reasons.push(format!("{failed}/{polled} nodes unreachable"));
    }
    if polled > 0 && failed == polled {
        verdict = "unhealthy";
    }
    for (op, (total, breach, burn)) in merged_slo(sweep) {
        if burn >= BURN_UNHEALTHY {
            verdict = "unhealthy";
            reasons.push(format!(
                "slo burn {burn:.2} on {op} (breach {breach}/{total})"
            ));
        } else if burn >= BURN_DEGRADED {
            if verdict == "ok" {
                verdict = "degraded";
            }
            reasons.push(format!(
                "slo burn {burn:.2} on {op} (breach {breach}/{total})"
            ));
        }
    }
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str("cluster-health".into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.extend([
        ("verdict".to_owned(), Json::Str(verdict.into())),
        (
            "reasons".to_owned(),
            Json::Arr(reasons.into_iter().map(Json::Str).collect()),
        ),
        ("nodes_polled".to_owned(), Json::Num(polled as f64)),
        ("nodes_failed".to_owned(), Json::Num(failed as f64)),
        ("slo".to_owned(), slo_json(sweep)),
    ]);
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_probe::telemetry::LogLinear;

    fn metrics_reply(latencies: &[u64], slo_total: u64, slo_breach: u64) -> Json {
        let hist = LogLinear::default();
        for &v in latencies {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let buckets: Vec<Json> = snap
            .buckets
            .iter()
            .map(|&(i, c)| Json::Arr(vec![Json::Num(f64::from(i)), Json::Num(c as f64)]))
            .collect();
        Json::Obj(vec![(
            "result".into(),
            Json::Obj(vec![
                (
                    "quantiles".into(),
                    Json::Obj(vec![(
                        "serve.request.latency_ns".into(),
                        Json::Obj(vec![
                            ("count".into(), Json::Num(snap.count as f64)),
                            ("sum".into(), Json::Num(snap.sum as f64)),
                            ("buckets".into(), Json::Arr(buckets)),
                        ]),
                    )]),
                ),
                (
                    "counters".into(),
                    Json::Obj(vec![
                        (
                            "serve.slo.optimize.total".into(),
                            Json::Obj(vec![("total".into(), Json::Num(slo_total as f64))]),
                        ),
                        (
                            "serve.slo.optimize.breach".into(),
                            Json::Obj(vec![("total".into(), Json::Num(slo_breach as f64))]),
                        ),
                    ]),
                ),
            ]),
        )])
    }

    fn stats_reply(hits: f64, misses: f64) -> Json {
        Json::Obj(vec![(
            "result".into(),
            Json::Obj(vec![(
                "cache".into(),
                Json::Obj(vec![
                    ("hits".into(), Json::Num(hits)),
                    ("misses".into(), Json::Num(misses)),
                ]),
            )]),
        )])
    }

    #[test]
    fn merged_quantiles_match_a_single_combined_histogram() {
        // Two nodes with disjoint latency populations; the merged p99
        // must equal the p99 of the union, not the mean of per-node
        // p99s.
        let slow: Vec<u64> = (0..100).map(|i| 1_000_000 + i * 1_000).collect();
        let fast: Vec<u64> = (0..100).map(|i| 10_000 + i * 100).collect();
        let nodes = vec!["a".to_string(), "b".to_string()];
        let sweep = poll(&nodes, |node, line| {
            Ok(if line.contains("metrics") {
                metrics_reply(if node == "a" { &slow } else { &fast }, 100, 0)
            } else {
                stats_reply(10.0, 90.0)
            })
        });
        let union = LogLinear::default();
        for &v in slow.iter().chain(fast.iter()) {
            union.record(v);
        }
        let expected = union.snapshot();
        let merged = sweep.merged.get("serve.request.latency_ns").unwrap();
        assert_eq!(merged.count, expected.count);
        for q in [0.5, 0.9, 0.99] {
            let (a, b) = (merged.quantile(q), expected.quantile(q));
            assert!(
                (a - b).abs() <= f64::EPSILON * a.abs().max(1.0),
                "q{q}: merged {a} vs union {b}"
            );
        }
        // SLO totals summed across nodes.
        let slo = merged_slo(&sweep);
        assert_eq!(slo.get("optimize").map(|v| (v.0, v.1)), Some((200, 0)));
    }

    #[test]
    fn replies_carry_shards_slo_and_per_node_status() {
        let nodes = vec!["up".to_string(), "down".to_string()];
        let sweep = poll(&nodes, |node, line| {
            if node == "down" {
                Err(ServeError::Remote("connection refused".into()))
            } else if line.contains("metrics") {
                Ok(metrics_reply(&[1_000, 2_000], 10, 9))
            } else {
                Ok(stats_reply(3.0, 1.0))
            }
        });
        let metrics = cluster_metrics_json(&sweep, Some("m1"));
        assert_eq!(metrics.get("id").and_then(Json::as_str), Some("m1"));
        assert_eq!(
            metrics
                .get("shards")
                .and_then(|s| s.get("up"))
                .and_then(|s| s.get("hit_rate"))
                .and_then(Json::as_f64),
            Some(0.75)
        );
        assert!(metrics
            .get("merged")
            .and_then(|m| m.get("serve.request.latency_ns"))
            .and_then(|q| q.get("buckets"))
            .and_then(Json::as_array)
            .is_some_and(|b| !b.is_empty()));
        let health = cluster_health_json(&sweep, None);
        // One node down and a 9/10 breach burn (well past unhealthy).
        assert_eq!(
            health.get("verdict").and_then(Json::as_str),
            Some("unhealthy"),
            "{}",
            health.render()
        );
        assert_eq!(health.get("nodes_failed").and_then(Json::as_u64), Some(1));
    }
}
