//! The consistent-hash ring: stable key → node placement with bounded
//! movement under membership change.
//!
//! Every member contributes `vnodes` points to a 64-bit circle; a key
//! is owned by the first point clockwise from its own hash. Virtual
//! nodes smooth the load split (the standard deviation of shard sizes
//! shrinks roughly as `1/sqrt(vnodes)`), and the circle structure is
//! what bounds churn: adding or removing one member of an `N`-node
//! ring reassigns only the arcs adjacent to that member's points —
//! about `1/N` of the key space — while every other key keeps its
//! owner, which is exactly the property that preserves the serve
//! nodes' content-addressed caches across a rebalance.
//!
//! Placement is a pure function of the member set: no RNG, no clock,
//! no insertion-order dependence (members are kept sorted), so every
//! router replica and every test run agrees on the mapping.

use sram_serve::fnv1a64;

/// Default virtual nodes per member (`SRAM_CLUSTER_VNODES` overrides).
pub const DEFAULT_VNODES: usize = 64;

/// SplitMix64 finalizer: a fast, full-avalanche 64-bit mixer. The
/// request keys entering the ring are FNV-1a hashes, whose low bits
/// correlate for short canonical strings; one splitmix round disperses
/// them uniformly around the circle. Also the workspace's stock
/// generator for deterministic test key sets.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A consistent-hash ring over named nodes.
///
/// Membership changes bump [`Ring::epoch`], so a reply tagged with the
/// epoch it was routed under can be audited later: affinity (same key
/// → same node) is only expected to hold *within* an epoch.
#[derive(Debug, Clone)]
pub struct Ring {
    vnodes: usize,
    epoch: u64,
    /// Sorted member names; `points` indexes into this.
    members: Vec<String>,
    /// `(point, member index)`, sorted by point.
    points: Vec<(u64, u32)>,
}

impl Ring {
    /// An empty ring with `vnodes` points per future member.
    #[must_use]
    pub fn new(vnodes: usize) -> Self {
        Self {
            vnodes: vnodes.max(1),
            epoch: 0,
            members: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Members currently on the ring, sorted.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members on the ring.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when no member is on the ring.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Membership generation: bumped by every successful add/remove.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Virtual nodes per member.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// `true` when `node` is on the ring.
    #[must_use]
    pub fn contains(&self, node: &str) -> bool {
        self.members
            .binary_search_by(|m| m.as_str().cmp(node))
            .is_ok()
    }

    /// Adds a member; returns `false` (and leaves the epoch alone) if
    /// it was already present.
    pub fn add(&mut self, node: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(node)) {
            Ok(_) => false,
            Err(at) => {
                self.members.insert(at, node.to_owned());
                self.rebuild();
                self.epoch += 1;
                true
            }
        }
    }

    /// Removes a member; returns `false` if it was not present.
    pub fn remove(&mut self, node: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(node)) {
            Ok(at) => {
                self.members.remove(at);
                self.rebuild();
                self.epoch += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// The owner of `key`, or `None` on an empty ring.
    #[must_use]
    pub fn primary(&self, key: u64) -> Option<&str> {
        self.candidate_indices(key, 1)
            .first()
            .map(|&i| self.members[i as usize].as_str())
    }

    /// Up to `replicas` distinct candidate owners for `key`, in
    /// preference order: the primary first, then the next distinct
    /// members clockwise (the hedge/failover order).
    #[must_use]
    pub fn candidates(&self, key: u64, replicas: usize) -> Vec<String> {
        self.candidate_indices(key, replicas)
            .into_iter()
            .map(|i| self.members[i as usize].clone())
            .collect()
    }

    fn candidate_indices(&self, key: u64, replicas: usize) -> Vec<u32> {
        if self.points.is_empty() || replicas == 0 {
            return Vec::new();
        }
        let want = replicas.min(self.members.len());
        let h = splitmix64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut picked: Vec<u32> = Vec::with_capacity(want);
        for step in 0..self.points.len() {
            let (_, member) = self.points[(start + step) % self.points.len()];
            if !picked.contains(&member) {
                picked.push(member);
                if picked.len() == want {
                    break;
                }
            }
        }
        picked
    }

    /// Rebuilds the point table from the member set. Cost is
    /// `members × vnodes` hashes — membership changes are rare (health
    /// transitions), lookups are the hot path.
    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.members.len() * self.vnodes);
        for (index, member) in self.members.iter().enumerate() {
            let base = fnv1a64(member.as_bytes());
            for v in 0..self.vnodes {
                let point = splitmix64(base ^ splitmix64(v as u64 + 1));
                self.points.push((point, index as u32));
            }
        }
        // Point collisions are broken by member index, which is itself
        // deterministic (members are sorted) — placement stays a pure
        // function of the member set.
        self.points.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(names: &[&str]) -> Ring {
        let mut ring = Ring::new(DEFAULT_VNODES);
        for n in names {
            ring.add(n);
        }
        ring
    }

    /// A deterministic key set, the same on every run and platform.
    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(splitmix64).collect()
    }

    #[test]
    fn placement_is_deterministic_across_threads_and_build_order() {
        let forward = ring_of(&["node-a", "node-b", "node-c"]);
        let reverse = ring_of(&["node-c", "node-b", "node-a"]);
        let keys = keys(2_000);
        let expected: Vec<Option<String>> = keys
            .iter()
            .map(|&k| forward.primary(k).map(str::to_owned))
            .collect();
        for (&k, want) in keys.iter().zip(&expected) {
            assert_eq!(reverse.primary(k).map(str::to_owned), *want);
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let local = ring_of(&["node-a", "node-b", "node-c"]);
                    for (&k, want) in keys.iter().zip(&expected) {
                        assert_eq!(local.primary(k).map(str::to_owned), *want);
                    }
                });
            }
        });
    }

    #[test]
    fn adding_a_node_moves_a_bounded_fraction_of_keys() {
        let three = ring_of(&["node-a", "node-b", "node-c"]);
        let mut four = three.clone();
        four.add("node-d");
        let keys = keys(4_000);
        let moved = keys
            .iter()
            .filter(|&&k| three.primary(k) != four.primary(k))
            .count();
        // Ideal movement is 1/4 of the keys (everything node-d now
        // owns); vnode granularity wobbles around the ideal, so allow
        // up to 2× before calling the ring broken.
        let ideal = keys.len() / 4;
        assert!(
            moved <= ideal * 2,
            "{moved} of {} keys moved on add; ideal ~{ideal}",
            keys.len()
        );
        // Every moved key must have moved TO the new node — anything
        // else is gratuitous churn that invalidates a warm cache.
        for &k in &keys {
            if three.primary(k) != four.primary(k) {
                assert_eq!(four.primary(k), Some("node-d"));
            }
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_keys() {
        let three = ring_of(&["node-a", "node-b", "node-c"]);
        let mut two = three.clone();
        two.remove("node-b");
        for &k in &keys(4_000) {
            if three.primary(k) != Some("node-b") {
                assert_eq!(two.primary(k), three.primary(k));
            } else {
                assert_ne!(two.primary(k), Some("node-b"));
            }
        }
    }

    #[test]
    fn load_split_is_roughly_even() {
        let ring = ring_of(&["node-a", "node-b", "node-c"]);
        let mut counts = std::collections::BTreeMap::new();
        let keys = keys(6_000);
        for &k in &keys {
            *counts
                .entry(ring.primary(k).unwrap().to_owned())
                .or_insert(0usize) += 1;
        }
        let ideal = keys.len() / 3;
        for (node, count) in &counts {
            assert!(
                *count > ideal / 2 && *count < ideal * 2,
                "{node} owns {count} of {} keys (ideal ~{ideal})",
                keys.len()
            );
        }
    }

    #[test]
    fn candidates_are_distinct_and_epoch_tracks_membership() {
        let mut ring = ring_of(&["node-a", "node-b", "node-c"]);
        assert_eq!(ring.epoch(), 3); // three adds
        let picked = ring.candidates(42, 2);
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
        assert_eq!(ring.candidates(42, 10).len(), 3);
        assert!(!ring.remove("node-x"));
        assert_eq!(ring.epoch(), 3); // failed remove does not bump
        assert!(ring.remove("node-b"));
        assert_eq!(ring.epoch(), 4);
        assert!(!ring.contains("node-b"));
    }
}
