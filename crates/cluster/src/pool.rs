//! Per-node connection pooling with bounded forwarding retry.
//!
//! The router holds many concurrent forwards to few nodes, so
//! connections are pooled per node address: an attempt checks one out
//! (or dials), runs one request/reply exchange, and returns it on
//! success. A connection that errored is dropped on the floor — its
//! [`NodeConn`] has already disconnected itself, and the pool never
//! hands out a handle that just failed.
//!
//! Transport failures retry in place with a deterministic doubling
//! backoff, bounded by [`MAX_ATTEMPTS`]; what the retry budget cannot
//! absorb surfaces to the router, which fails over to the next ring
//! candidate instead of hammering a dead node.

use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use sram_serve::{Json, NodeConn, ServeError};

/// Most tries one forward makes against a single node before the
/// failure surfaces to the router's failover path.
pub(crate) const MAX_ATTEMPTS: u32 = 3;

/// First retry backoff; doubles per attempt (1 ms, 2 ms).
const RETRY_BASE_BACKOFF: Duration = Duration::from_millis(1);

/// Most idle connections kept per node.
const MAX_IDLE_PER_NODE: usize = 8;

/// A pool of reusable node connections, keyed by node address.
pub(crate) struct Pool {
    timeout: Option<Duration>,
    idle: Mutex<HashMap<String, Vec<NodeConn>>>,
}

impl Pool {
    pub(crate) fn new(timeout: Option<Duration>) -> Self {
        Self {
            timeout,
            idle: Mutex::new(HashMap::new()),
        }
    }

    fn checkout(&self, addr: &str) -> NodeConn {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        idle.get_mut(addr)
            .and_then(Vec::pop)
            .unwrap_or_else(|| NodeConn::new(addr, self.timeout))
    }

    fn checkin(&self, addr: &str, conn: NodeConn) {
        let mut idle = self.idle.lock().unwrap_or_else(PoisonError::into_inner);
        let slot = idle.entry(addr.to_owned()).or_default();
        if slot.len() < MAX_IDLE_PER_NODE {
            slot.push(conn);
        }
    }

    /// One request/reply exchange against `addr`, retrying transport
    /// failures up to [`MAX_ATTEMPTS`] times with doubling backoff.
    ///
    /// Protocol errors (a malformed reply line) do not retry: the bytes
    /// made it both ways, so resending risks a duplicate execution.
    pub(crate) fn call(&self, addr: &str, line: &str) -> Result<Json, ServeError> {
        let mut attempt: u32 = 0;
        loop {
            let mut conn = self.checkout(addr);
            match conn.call_line(line) {
                Ok(reply) => {
                    self.checkin(addr, conn);
                    return Ok(reply);
                }
                Err(ServeError::Io(_) | ServeError::Remote(_)) if attempt + 1 < MAX_ATTEMPTS => {
                    attempt += 1;
                    sram_probe::probe_inc!("cluster.forward.retries");
                    std::thread::sleep(RETRY_BASE_BACKOFF * 2u32.pow(attempt - 1));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_against_a_dead_address_fails_after_bounded_retries() {
        // Port 1 on localhost refuses immediately on any sane system.
        let pool = Pool::new(Some(Duration::from_millis(100)));
        let started = std::time::Instant::now();
        let result = pool.call("127.0.0.1:1", r#"{"op":"stats"}"#);
        assert!(result.is_err());
        // 3 attempts with 1+2 ms backoff — nowhere near an unbounded
        // retry loop's runtime.
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn checkin_caps_the_idle_pool() {
        let pool = Pool::new(None);
        for _ in 0..20 {
            pool.checkin("n1", NodeConn::new("127.0.0.1:1", None));
        }
        let idle = pool.idle.lock().unwrap();
        assert_eq!(idle.get("n1").map(Vec::len), Some(MAX_IDLE_PER_NODE));
    }
}
