//! The health poller: node state machine driving ring membership.
//!
//! A background thread polls every configured node's `health` op and
//! walks each node through a three-state machine:
//!
//! ```text
//!            verdict unhealthy                 poll failure ×2
//! Healthy ───────────────────────▶ Draining ───────────────────▶ Down
//!    ▲  ◀──────────────────────────── │  ◀──────────────────────── │
//!    └──────── verdict ok/degraded ───┴── (successful fresh poll) ──┘
//! ```
//!
//! * **Healthy** — on the ring, taking traffic.
//! * **Draining** — the node answered but judged itself `unhealthy`;
//!   it is removed from the ring (no new keys) but keeps being polled,
//!   so it rejoins the moment its verdict recovers.
//! * **Down** — [`DOWN_AFTER_FAILURES`] consecutive poll failures; the
//!   node is evicted and its last-seen health revision forgotten (a
//!   restarted process restarts its revision counter at 1, which must
//!   not read as stale).
//!
//! Staleness: serve's `health` reply carries a monotonic `revision`
//! (PR 8's small fix). A reply whose revision is at or below the last
//! one seen from the same node is a reordered or duplicated snapshot —
//! it is counted (`cluster.health.stale`) and skipped, never applied.
//!
//! Every ring add/remove bumps the ring epoch, which the router stamps
//! onto forwarded replies — affinity audits group by epoch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

use sram_serve::{Json, NodeConn};

use crate::ring::Ring;

/// Consecutive poll failures after which a node is declared down.
pub const DOWN_AFTER_FAILURES: u32 = 2;

/// Where a node stands in the drain/evict/rejoin state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// On the ring, taking traffic.
    Healthy,
    /// Reachable but self-reported unhealthy: off the ring, polled.
    Draining,
    /// Unreachable: evicted from the ring.
    Down,
}

impl NodeState {
    /// Wire name for `cluster-stats`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Healthy => "healthy",
            Self::Draining => "draining",
            Self::Down => "down",
        }
    }
}

/// Per-node poller bookkeeping.
#[derive(Debug, Clone)]
pub struct NodeStatus {
    /// Current state-machine position.
    pub state: NodeState,
    /// Highest health revision seen from this process incarnation.
    pub last_revision: u64,
    /// Consecutive failed polls (reset by any successful poll).
    pub failures: u32,
}

/// Ring + node states, shared between the poller and the router under
/// one lock (membership changes and candidate reads must be atomic
/// with respect to each other).
pub(crate) struct Membership {
    pub(crate) ring: Ring,
    pub(crate) states: BTreeMap<String, NodeStatus>,
}

impl Membership {
    /// Seeds every configured node as healthy and on the ring: the
    /// router starts optimistic and lets the first poll round correct
    /// it, rather than refusing traffic until the poller has run.
    pub(crate) fn seed(nodes: &[String], vnodes: usize) -> Self {
        let mut ring = Ring::new(vnodes);
        let mut states = BTreeMap::new();
        for node in nodes {
            ring.add(node);
            states.insert(
                node.clone(),
                NodeStatus {
                    state: NodeState::Healthy,
                    last_revision: 0,
                    failures: 0,
                },
            );
        }
        Self { ring, states }
    }
}

/// Applies one successful health reply to the membership. Returns
/// `true` if the sample was applied (fresh), `false` if stale or
/// unusable.
fn apply_health(membership: &mut Membership, node: &str, reply: &Json) -> bool {
    if reply.get("status").and_then(Json::as_str) != Some("ok") {
        // The transport worked but the node answered with a typed
        // error (e.g. `busy`): not a health snapshot, not a failure —
        // leave the state machine where it is and poll again.
        return false;
    }
    // The node wraps the health payload in its standard ok envelope:
    // `{"status":"ok","result":{verdict, revision, …}}`.
    let body = reply.get("result").unwrap_or(reply);
    let revision = body.get("revision").and_then(Json::as_u64).unwrap_or(0);
    let verdict = body
        .get("verdict")
        .and_then(Json::as_str)
        .unwrap_or("unhealthy");
    let Some(status) = membership.states.get_mut(node) else {
        return false;
    };
    if revision != 0 && revision <= status.last_revision {
        sram_probe::counter("cluster.health.stale").inc();
        return false;
    }
    status.last_revision = revision;
    status.failures = 0;
    let was = status.state;
    if verdict == "unhealthy" {
        status.state = NodeState::Draining;
        if membership.ring.remove(node) {
            sram_probe::counter("cluster.node.drained").inc();
        }
    } else {
        status.state = NodeState::Healthy;
        if membership.ring.add(node) && was != NodeState::Healthy {
            sram_probe::counter("cluster.node.rejoined").inc();
        }
    }
    true
}

/// Applies one failed poll. Eviction fires on the transition into
/// `Down`, and the revision watermark resets so the node's restarted
/// incarnation (which counts from 1 again) is not judged stale.
fn apply_failure(membership: &mut Membership, node: &str) {
    let Some(status) = membership.states.get_mut(node) else {
        return;
    };
    status.failures += 1;
    if status.failures >= DOWN_AFTER_FAILURES && status.state != NodeState::Down {
        status.state = NodeState::Down;
        status.last_revision = 0;
        membership.ring.remove(node);
        sram_probe::counter("cluster.node.evicted").inc();
    }
}

/// The poller thread body: one `health` round over every configured
/// node per tick, until `stop` is raised.
pub(crate) fn poll_loop(
    membership: &Mutex<Membership>,
    nodes: &[String],
    stop: &AtomicBool,
    interval: Duration,
    timeout: Duration,
) {
    let mut conns: Vec<NodeConn> = nodes
        .iter()
        .map(|n| NodeConn::new(n.as_str(), Some(timeout)))
        .collect();
    while !stop.load(Ordering::SeqCst) {
        for conn in &mut conns {
            let node = conn.addr().to_owned();
            match conn.call_line(r#"{"op":"health"}"#) {
                Ok(reply) => {
                    sram_probe::probe_inc!("cluster.health.polls");
                    let mut guard = membership.lock().unwrap_or_else(PoisonError::into_inner);
                    apply_health(&mut guard, &node, &reply);
                }
                Err(_) => {
                    let mut guard = membership.lock().unwrap_or_else(PoisonError::into_inner);
                    apply_failure(&mut guard, &node);
                }
            }
        }
        // One sleep per round, polled in small steps so shutdown is
        // observed promptly even with a long interval.
        let mut slept = Duration::ZERO;
        let step = interval.min(Duration::from_millis(10));
        while slept < interval && !stop.load(Ordering::SeqCst) {
            std::thread::sleep(step);
            slept += step;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn membership() -> Membership {
        Membership::seed(&["n1".to_owned(), "n2".to_owned(), "n3".to_owned()], 16)
    }

    fn health(revision: u64, verdict: &str) -> Json {
        Json::parse(&format!(
            r#"{{"status":"ok","result":{{"verdict":"{verdict}","revision":{revision}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn unhealthy_verdict_drains_and_recovery_rejoins() {
        let mut m = membership();
        assert!(apply_health(&mut m, "n2", &health(1, "unhealthy")));
        assert_eq!(m.states["n2"].state, NodeState::Draining);
        assert!(!m.ring.contains("n2"));
        let epoch = m.ring.epoch();
        assert!(apply_health(&mut m, "n2", &health(2, "ok")));
        assert_eq!(m.states["n2"].state, NodeState::Healthy);
        assert!(m.ring.contains("n2"));
        assert_eq!(m.ring.epoch(), epoch + 1);
    }

    #[test]
    fn stale_revision_is_skipped() {
        let mut m = membership();
        assert!(apply_health(&mut m, "n1", &health(5, "ok")));
        // An out-of-order snapshot must not flip the state machine.
        assert!(!apply_health(&mut m, "n1", &health(5, "unhealthy")));
        assert!(!apply_health(&mut m, "n1", &health(4, "unhealthy")));
        assert_eq!(m.states["n1"].state, NodeState::Healthy);
        assert!(apply_health(&mut m, "n1", &health(6, "unhealthy")));
        assert_eq!(m.states["n1"].state, NodeState::Draining);
    }

    #[test]
    fn repeated_failures_evict_and_reset_the_revision_watermark() {
        let mut m = membership();
        assert!(apply_health(&mut m, "n3", &health(9, "ok")));
        apply_failure(&mut m, "n3");
        assert_eq!(m.states["n3"].state, NodeState::Healthy); // one strike
        apply_failure(&mut m, "n3");
        assert_eq!(m.states["n3"].state, NodeState::Down);
        assert!(!m.ring.contains("n3"));
        assert_eq!(m.states["n3"].last_revision, 0);
        // The restarted incarnation counts revisions from 1 again and
        // must be accepted, not judged stale against revision 9.
        assert!(apply_health(&mut m, "n3", &health(1, "ok")));
        assert_eq!(m.states["n3"].state, NodeState::Healthy);
        assert!(m.ring.contains("n3"));
    }

    #[test]
    fn a_typed_error_reply_is_neither_a_sample_nor_a_failure() {
        let mut m = membership();
        let busy = Json::parse(r#"{"status":"busy","retryable":true}"#).unwrap();
        assert!(!apply_health(&mut m, "n1", &busy));
        assert_eq!(m.states["n1"].state, NodeState::Healthy);
        assert_eq!(m.states["n1"].failures, 0);
    }

    #[test]
    fn degraded_verdict_keeps_the_node_on_the_ring() {
        let mut m = membership();
        assert!(apply_health(&mut m, "n1", &health(1, "degraded")));
        assert_eq!(m.states["n1"].state, NodeState::Healthy);
        assert!(m.ring.contains("n1"));
    }
}
