//! External affinity auditing: did same-key queries really land on
//! the same node?
//!
//! The router's whole value proposition is cache affinity, so the
//! cluster soak verifies it from the *outside*: every forwarded reply
//! is stamped with the answering node, the ring epoch it was routed
//! under, and the route kind (`via`). Within one epoch, every
//! primary-routed reply for a key must name the same node — hedge and
//! failover replies are exempt (they exist precisely to go elsewhere),
//! and observations from different epochs never conflict (a rebalance
//! legitimately moves keys).
//!
//! The counters live here rather than in the soak because `cluster.*`
//! is this crate's namespace: `cluster.affinity.checked` counts
//! same-epoch repeat observations audited, `cluster.affinity.violations`
//! counts the ones that named a different node.

use std::collections::BTreeMap;

/// One externally-observed routed reply.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The request's content-addressed key.
    pub key: u64,
    /// Ring epoch stamped on the reply.
    pub epoch: u64,
    /// Node that answered.
    pub node: String,
    /// Route kind stamped on the reply (`primary`/`hedge`/`failover`).
    pub via: String,
}

/// Audit outcome: how many repeat observations were checked and how
/// many violated affinity, with one description per violation.
#[derive(Debug, Default)]
pub struct Report {
    /// Same-epoch repeat observations audited.
    pub checked: u64,
    /// Audited observations that named a different node than the first
    /// primary-routed reply for their `(epoch, key)`.
    pub violations: u64,
    /// One line per violation, for the soak's failure report.
    pub details: Vec<String>,
}

/// Audits a batch of observations and publishes the totals to the
/// `cluster.affinity.checked` / `cluster.affinity.violations` counters
/// (ungated — CI asserts them from the probe snapshot).
#[must_use]
pub fn audit(observations: &[Observation]) -> Report {
    let mut owners: BTreeMap<(u64, u64), &str> = BTreeMap::new();
    let mut report = Report::default();
    for obs in observations {
        if obs.via != "primary" {
            continue;
        }
        match owners.get(&(obs.epoch, obs.key)) {
            None => {
                owners.insert((obs.epoch, obs.key), obs.node.as_str());
            }
            Some(owner) => {
                report.checked += 1;
                if *owner != obs.node {
                    report.violations += 1;
                    report.details.push(format!(
                        "key {:#018x} in epoch {} answered by {} after {}",
                        obs.key, obs.epoch, obs.node, owner
                    ));
                }
            }
        }
    }
    sram_probe::counter("cluster.affinity.checked").add(report.checked);
    sram_probe::counter("cluster.affinity.violations").add(report.violations);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(key: u64, epoch: u64, node: &str, via: &str) -> Observation {
        Observation {
            key,
            epoch,
            node: node.to_owned(),
            via: via.to_owned(),
        }
    }

    #[test]
    fn same_epoch_same_node_is_clean() {
        let report = audit(&[
            obs(1, 0, "n1", "primary"),
            obs(1, 0, "n1", "primary"),
            obs(2, 0, "n2", "primary"),
        ]);
        assert_eq!((report.checked, report.violations), (1, 0));
    }

    #[test]
    fn same_epoch_different_node_is_a_violation() {
        let report = audit(&[obs(1, 4, "n1", "primary"), obs(1, 4, "n2", "primary")]);
        assert_eq!((report.checked, report.violations), (1, 1));
        assert!(report.details[0].contains("epoch 4"));
    }

    #[test]
    fn cross_epoch_and_non_primary_replies_are_exempt() {
        let report = audit(&[
            obs(1, 0, "n1", "primary"),
            obs(1, 1, "n2", "primary"), // rebalance moved the key
            obs(1, 0, "n3", "hedge"),   // hedge went elsewhere on purpose
            obs(1, 0, "n3", "failover"),
        ]);
        assert_eq!((report.checked, report.violations), (0, 0));
    }
}
