//! Cross-node span stitching: one timeline per distributed request.
//!
//! A traced request that hedges or fails over touches several nodes,
//! and each node returns its own `serve.request` span tree rebased to
//! start at 0. This module assembles those fragments under one
//! router-side `cluster.request` root:
//!
//! * **clock rebasing** — node clocks are not comparable, so each
//!   returned tree is shifted onto the router's timeline at
//!   `send + max(0, rtt − node_dur) / 2`: the attempt's send time plus
//!   half the unaccounted wire time, the classic symmetric-delay
//!   estimate (DESIGN.md §15);
//! * **loser retention** — a cancelled hedge attempt that did the work
//!   still contributes its subtree, marked `"hedge_loser": true`, so
//!   the timeline shows both sides of the race instead of silently
//!   dropping the slower half;
//! * **connectivity validation** — every attempt subtree must carry
//!   the `parent_span` the node adopted; a mismatch means the tree is
//!   really a disconnected forest, which [`validate`] rejects and the
//!   router counts under `cluster.trace.forests`;
//! * **Chrome export** — [`chrome_trace`] renders a stitched tree with
//!   one `pid` lane per process (router plus each node), so merged
//!   timelines stop drawing on top of each other.

use std::fmt::Write as _;

use sram_probe::trace::TraceCtx;
use sram_serve::Json;

/// One forwarding attempt's contribution to a stitched timeline.
#[derive(Debug, Clone)]
pub struct AttemptPiece {
    /// The node address the attempt dialed.
    pub node: String,
    /// How the attempt was launched (`primary`/`hedge`/`failover`).
    pub via: &'static str,
    /// `true` when this attempt lost the hedge race after doing work —
    /// its reply was discarded but its subtree is kept.
    pub hedge_loser: bool,
    /// Send time on the router's clock, ns since the forward started.
    pub send_ns: u64,
    /// Round-trip time of the attempt, ns (0 if it never completed).
    pub rtt_ns: u64,
    /// The node's returned span tree (rebased to 0 at its root), when
    /// the attempt was sampled and completed.
    pub tree: Option<Json>,
    /// The attempt's error, for attempts that produced no reply.
    pub error: Option<String>,
}

/// Shifts every `start_ns` in a node tree onto the router timeline.
fn rebase(node: &mut Json, offset_ns: u64) {
    if let Json::Obj(pairs) = node {
        for (key, value) in pairs.iter_mut() {
            match (key.as_str(), &mut *value) {
                ("start_ns", Json::Num(n)) => *n += offset_ns as f64,
                ("children", Json::Arr(children)) => {
                    for child in children {
                        rebase(child, offset_ns);
                    }
                }
                _ => {}
            }
        }
    }
}

/// The symmetric-delay clock offset for one attempt: its send time
/// plus half the wire time the node tree does not account for.
#[must_use]
pub fn clock_offset_ns(send_ns: u64, rtt_ns: u64, node_dur_ns: u64) -> u64 {
    send_ns + rtt_ns.saturating_sub(node_dur_ns) / 2
}

/// Assembles attempt fragments into one `cluster.request` tree on the
/// router's timeline. `total_ns` is the router-observed wall time of
/// the whole forward (the root span's duration).
#[must_use]
pub fn stitch(ctx: &TraceCtx, total_ns: u64, attempts: &[AttemptPiece]) -> Json {
    let mut children = Vec::with_capacity(attempts.len());
    for attempt in attempts {
        let mut pairs: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str("cluster.attempt".into())),
            ("node".into(), Json::Str(attempt.node.clone())),
            ("via".into(), Json::Str(attempt.via.into())),
            ("hedge_loser".into(), Json::Bool(attempt.hedge_loser)),
            ("start_ns".into(), Json::Num(attempt.send_ns as f64)),
            ("dur_ns".into(), Json::Num(attempt.rtt_ns as f64)),
        ];
        if let Some(error) = &attempt.error {
            pairs.push(("error".into(), Json::Str(error.clone())));
        }
        let mut grandchildren = Vec::new();
        if let Some(tree) = &attempt.tree {
            let node_dur = tree.get("dur_ns").and_then(Json::as_u64).unwrap_or(0);
            let offset = clock_offset_ns(attempt.send_ns, attempt.rtt_ns, node_dur);
            let mut rebased = tree.clone();
            rebase(&mut rebased, offset);
            grandchildren.push(rebased);
        }
        pairs.push(("children".into(), Json::Arr(grandchildren)));
        children.push(Json::Obj(pairs));
    }
    Json::Obj(vec![
        ("name".into(), Json::Str("cluster.request".into())),
        (
            "trace_id".into(),
            Json::Str(format!("{:016x}", ctx.trace_id)),
        ),
        ("root_span".into(), Json::Num(ctx.parent_span as f64)),
        ("start_ns".into(), Json::Num(0.0)),
        ("dur_ns".into(), Json::Num(total_ns as f64)),
        ("children".into(), Json::Arr(children)),
    ])
}

fn count_spans(node: &Json) -> u64 {
    let mut count = 1;
    if let Some(children) = node.get("children").and_then(Json::as_array) {
        for child in children {
            count += count_spans(child);
        }
    }
    count
}

/// Total span count of a stitched tree (root, attempts, and every
/// node-side span).
#[must_use]
pub fn span_count(tree: &Json) -> u64 {
    count_spans(tree)
}

/// Checks that a stitched tree is one connected timeline and returns
/// its span count.
///
/// # Errors
///
/// A human-readable reason when the tree is really a forest: no
/// attempt carried a node subtree at all, or a subtree's adopted
/// `parent_span` (stamped by the node from its root span's begin
/// event) does not match the router's root span id.
pub fn validate(tree: &Json) -> Result<u64, String> {
    let root_span = tree
        .get("root_span")
        .and_then(Json::as_u64)
        .ok_or_else(|| "stitched tree lacks root_span".to_string())?;
    let attempts = tree
        .get("children")
        .and_then(Json::as_array)
        .ok_or_else(|| "stitched tree lacks children".to_string())?;
    let mut subtrees = 0usize;
    for attempt in attempts {
        let node = attempt.get("node").and_then(Json::as_str).unwrap_or("?");
        let Some(children) = attempt.get("children").and_then(Json::as_array) else {
            return Err(format!("attempt on {node} lacks children"));
        };
        for subtree in children {
            subtrees += 1;
            let adopted = subtree.get("parent_span").and_then(Json::as_u64);
            if adopted != Some(root_span) {
                return Err(format!(
                    "subtree from {node} adopted parent {adopted:?}, expected {root_span} — \
                     disconnected forest"
                ));
            }
        }
    }
    if subtrees == 0 {
        return Err("no attempt carried a node span tree".to_string());
    }
    Ok(span_count(tree))
}

fn chrome_event(out: &mut String, node: &Json, pid: u32, extra: &[(&str, String)]) {
    let name = node.get("name").and_then(Json::as_str).unwrap_or("span");
    let start = node.get("start_ns").and_then(Json::as_f64).unwrap_or(0.0);
    let dur = node.get("dur_ns").and_then(Json::as_f64).unwrap_or(0.0);
    let _ = write!(
        out,
        ",{{\"name\":\"{name}\",\"cat\":\"cluster\",\"ph\":\"X\",\"pid\":{pid},\"tid\":1,\
         \"ts\":{:.3},\"dur\":{:.3}",
        start / 1e3,
        dur / 1e3,
    );
    if !extra.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (key, value)) in extra.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{value}");
        }
        out.push('}');
    }
    out.push('}');
}

fn chrome_subtree(out: &mut String, node: &Json, pid: u32) {
    chrome_event(out, node, pid, &[]);
    if let Some(children) = node.get("children").and_then(Json::as_array) {
        for child in children {
            chrome_subtree(out, child, pid);
        }
    }
}

/// Renders a stitched tree as Chrome trace-event JSON with one `pid`
/// lane per process: the router on `pid` 1, each distinct node on its
/// own `pid`, each announced via a `process_name` metadata event.
#[must_use]
pub fn chrome_trace(tree: &Json) -> String {
    let attempts: Vec<&Json> = tree
        .get("children")
        .and_then(Json::as_array)
        .map(|c| c.iter().collect())
        .unwrap_or_default();
    // Stable pid per distinct node address, in first-seen order.
    let mut nodes: Vec<&str> = Vec::new();
    for attempt in &attempts {
        if let Some(addr) = attempt.get("node").and_then(Json::as_str) {
            if !nodes.contains(&addr) {
                nodes.push(addr);
            }
        }
    }
    let mut out = String::from("{\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"router\"}}",
    );
    for (i, addr) in nodes.iter().enumerate() {
        let _ = write!(
            out,
            ",{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{addr}\"}}}}",
            i as u32 + 2,
        );
    }
    chrome_event(&mut out, tree, 1, &[]);
    for attempt in &attempts {
        let addr = attempt.get("node").and_then(Json::as_str).unwrap_or("?");
        let pid = nodes
            .iter()
            .position(|n| *n == addr)
            .map_or(1, |i| i as u32 + 2);
        let via = attempt.get("via").and_then(Json::as_str).unwrap_or("?");
        let loser = attempt
            .get("hedge_loser")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        // The attempt marker renders on the router lane (it is the
        // router's view of the wire), its node subtree on the node's.
        chrome_event(
            &mut out,
            attempt,
            1,
            &[
                ("via", format!("\"{via}\"")),
                ("hedge_loser", loser.to_string()),
                ("node", format!("\"{addr}\"")),
            ],
        );
        if let Some(children) = attempt.get("children").and_then(Json::as_array) {
            for child in children {
                chrome_subtree(&mut out, child, pid);
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_tree(parent_span: u64, dur_ns: f64) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str("serve.request".into())),
            ("start_ns".into(), Json::Num(0.0)),
            ("dur_ns".into(), Json::Num(dur_ns)),
            ("trace_id".into(), Json::Str("00000000000000aa".into())),
            ("parent_span".into(), Json::Num(parent_span as f64)),
            (
                "children".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::Str("serve.evaluate".into())),
                    ("start_ns".into(), Json::Num(100.0)),
                    ("dur_ns".into(), Json::Num(500.0)),
                    ("children".into(), Json::Arr(Vec::new())),
                ])]),
            ),
        ])
    }

    fn ctx() -> TraceCtx {
        TraceCtx {
            trace_id: 0xaa,
            parent_span: 7,
            sampled: true,
        }
    }

    #[test]
    fn stitch_rebases_subtrees_onto_the_router_timeline() {
        let attempts = vec![
            AttemptPiece {
                node: "n1".into(),
                via: "primary",
                hedge_loser: true,
                send_ns: 1_000,
                rtt_ns: 10_000,
                tree: Some(node_tree(7, 8_000.0)),
                error: None,
            },
            AttemptPiece {
                node: "n2".into(),
                via: "hedge",
                hedge_loser: false,
                send_ns: 5_000,
                rtt_ns: 6_000,
                tree: Some(node_tree(7, 6_000.0)),
                error: None,
            },
        ];
        let tree = stitch(&ctx(), 12_000, &attempts);
        assert_eq!(
            tree.get("name").and_then(Json::as_str),
            Some("cluster.request")
        );
        let children = tree.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(children.len(), 2);
        // First attempt: offset = 1000 + (10000 - 8000)/2 = 2000.
        let first_sub = &children[0]
            .get("children")
            .and_then(Json::as_array)
            .unwrap()[0];
        assert_eq!(
            first_sub.get("start_ns").and_then(Json::as_u64),
            Some(2_000)
        );
        let eval = &first_sub.get("children").and_then(Json::as_array).unwrap()[0];
        assert_eq!(eval.get("start_ns").and_then(Json::as_u64), Some(2_100));
        // Second attempt: rtt == dur → offset is exactly the send time.
        let second_sub = &children[1]
            .get("children")
            .and_then(Json::as_array)
            .unwrap()[0];
        assert_eq!(
            second_sub.get("start_ns").and_then(Json::as_u64),
            Some(5_000)
        );
        // Loser marking survives.
        assert_eq!(
            children[0].get("hedge_loser").and_then(Json::as_bool),
            Some(true)
        );
        // 1 root + 2 attempts + 2 × (request + evaluate) = 7 spans.
        assert_eq!(validate(&tree).unwrap(), 7);
    }

    #[test]
    fn validate_rejects_disconnected_forests() {
        let good = AttemptPiece {
            node: "n1".into(),
            via: "primary",
            hedge_loser: false,
            send_ns: 0,
            rtt_ns: 1_000,
            tree: Some(node_tree(7, 1_000.0)),
            error: None,
        };
        // Wrong adopted parent: the node never re-rooted under us.
        let mut stray = good.clone();
        stray.tree = Some(node_tree(99, 1_000.0));
        let forest = stitch(&ctx(), 1_000, std::slice::from_ref(&stray));
        let err = validate(&forest).unwrap_err();
        assert!(err.contains("disconnected"), "{err}");
        // No subtree at all is a forest too.
        let mut bare = good.clone();
        bare.tree = None;
        bare.error = Some("connection reset".into());
        let empty = stitch(&ctx(), 1_000, std::slice::from_ref(&bare));
        assert!(validate(&empty).is_err());
        // The good attempt alone validates.
        let ok = stitch(&ctx(), 1_000, std::slice::from_ref(&good));
        assert_eq!(validate(&ok).unwrap(), 4);
    }

    #[test]
    fn chrome_trace_gives_each_node_its_own_pid_lane() {
        let attempts = vec![
            AttemptPiece {
                node: "10.0.0.1:9000".into(),
                via: "primary",
                hedge_loser: true,
                send_ns: 0,
                rtt_ns: 2_000,
                tree: Some(node_tree(7, 2_000.0)),
                error: None,
            },
            AttemptPiece {
                node: "10.0.0.2:9000".into(),
                via: "hedge",
                hedge_loser: false,
                send_ns: 500,
                rtt_ns: 1_000,
                tree: Some(node_tree(7, 1_000.0)),
                error: None,
            },
        ];
        let json = chrome_trace(&stitch(&ctx(), 2_500, &attempts));
        assert!(json.contains("\"args\":{\"name\":\"router\"}"), "{json}");
        assert!(
            json.contains("\"args\":{\"name\":\"10.0.0.1:9000\"}"),
            "{json}"
        );
        assert!(json.contains("\"pid\":2"), "{json}");
        assert!(json.contains("\"pid\":3"), "{json}");
        assert!(json.contains("\"hedge_loser\":true"), "{json}");
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }
}
