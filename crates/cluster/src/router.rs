//! The router: one TCP front door over N serve nodes.
//!
//! Requests arrive on the same line-delimited JSON protocol the nodes
//! speak, so a client cannot tell a router from a node — except that
//! the router stamps every forwarded reply with `"node"` (which node
//! answered), `"epoch"` (the ring generation it routed under), and
//! `"via"` (`primary`/`hedge`/`failover`), which is what lets the
//! cluster soak audit affinity externally.
//!
//! Routing policy per op:
//!
//! * **query ops** (`optimize`, `evaluate-point`, …) — consistent-hash
//!   the request's canonical content-addressed key onto the ring and
//!   forward to the primary owner. Cache affinity falls out: the same
//!   canonical query always lands on the node whose LRU already holds
//!   it. If the primary is slow, a second replica is hedged after a
//!   windowed-p99-derived delay; first reply wins, the loser observes
//!   a shared [`CancelToken`] and discards its reply. A transport
//!   failure fails over to the next ring candidate immediately.
//! * **introspection ops** (`stats`, `metrics`, `health`) — never
//!   cached and meaningless to shard: fan out to every configured node
//!   and return the per-node replies under `"nodes"`.
//! * **`cluster-stats`** — answered by the router itself (the nodes
//!   would reject the op): ring membership, per-node poller state, and
//!   the router's own counters. Never cached, never forwarded.
//! * **`cluster-metrics` / `cluster-health`** — answered by the router
//!   from a fresh [`crate::collector`] sweep of every node's `metrics`
//!   and `stats` ops: merged `LogLinear` histograms with cluster-wide
//!   p50/p90/p99, the per-shard cache-hit breakdown, and an SLO burn
//!   over the merged distribution. Never cached, never forwarded.
//!
//! A request with `"trace": true` additionally gets a distributed
//! trace: the router makes one seeded sampling decision, attaches a
//! `trace_ctx` to every forwarded attempt, and stitches the returned
//! span trees — the winner *and* any cancelled hedge loser, marked
//! `hedge_loser: true` — into one clock-rebased timeline
//! ([`crate::stitch`]) that replaces the winner's node-local tree in
//! the reply.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sram_faults::CancelToken;
use sram_probe::trace::TraceCtx;
use sram_serve::{error_response, Json, Request, ServeError};

use crate::collector;
use crate::poller::{poll_loop, Membership};
use crate::pool::Pool;
use crate::ring::DEFAULT_VNODES;
use crate::stitch::{self, AttemptPiece};

/// Hedge delay is recomputed from the telemetry window at most this
/// often — the export walks every counter, too heavy per request.
const HEDGE_RECOMPUTE: Duration = Duration::from_millis(250);

/// Upper bound on the derived hedge delay: beyond this a hedge no
/// longer rescues tail latency, it just doubles load.
const HEDGE_CAP_MS: f64 = 250.0;

/// Default router slow-query threshold (ms), overridden by
/// `SRAM_LOG_SLOW_MS` — same knob the nodes honor.
const DEFAULT_SLOW_QUERY_MS: u64 = 1000;

/// Monotonic per-request key feeding the seeded trace sampler and the
/// deterministic trace-id stream.
static ROUTE_KEY: AtomicU64 = AtomicU64::new(0);

fn slow_threshold_ns() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("SRAM_LOG_SLOW_MS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_QUERY_MS)
            .saturating_mul(1_000_000)
    })
}

/// Router sizing and timing knobs. [`RouterConfig::from_env`] reads
/// the `SRAM_CLUSTER_*` family; in-process clusters set fields
/// directly.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend node addresses (static membership; the ring holds the
    /// healthy subset).
    pub nodes: Vec<String>,
    /// Distinct ring candidates tried per key: the primary plus
    /// `replicas - 1` hedge/failover targets.
    pub replicas: usize,
    /// Floor (and cold-start value) for the hedge delay, milliseconds.
    pub hedge_ms: u64,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Health-poll cadence.
    pub poll_interval: Duration,
    /// Per-attempt node read timeout.
    pub node_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            nodes: Vec::new(),
            replicas: 2,
            hedge_ms: 10,
            vnodes: DEFAULT_VNODES,
            poll_interval: Duration::from_millis(25),
            node_timeout: Duration::from_secs(10),
        }
    }
}

impl RouterConfig {
    /// Reads the `SRAM_CLUSTER_NODES` / `SRAM_CLUSTER_REPLICAS` /
    /// `SRAM_CLUSTER_HEDGE_MS` / `SRAM_CLUSTER_VNODES` environment
    /// family over the defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(nodes) = std::env::var(crate::SRAM_CLUSTER_NODES_ENV) {
            config.nodes = nodes
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_REPLICAS_ENV) {
            config.replicas = (v as usize).max(1);
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_HEDGE_MS_ENV) {
            config.hedge_ms = v;
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_VNODES_ENV) {
            config.vnodes = (v as usize).max(1);
        }
        config
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Cached hedge-delay derivation (see [`hedge_delay`]).
struct HedgeState {
    computed_at: Option<Instant>,
    delay: Duration,
}

/// State shared by the acceptor, connection threads, and poller.
struct RouterInner {
    config: RouterConfig,
    membership: Mutex<Membership>,
    pool: Pool,
    hedge: Mutex<HedgeState>,
}

/// How an attempt reached its node — stamped onto the reply.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Via {
    Primary,
    Hedge,
    Failover,
}

impl Via {
    fn as_str(self) -> &'static str {
        match self {
            Self::Primary => "primary",
            Self::Hedge => "hedge",
            Self::Failover => "failover",
        }
    }
}

/// A running router; [`Router::shutdown`] (or drop) stops it.
pub struct Router {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds the front door and starts the acceptor and health poller.
    ///
    /// # Errors
    ///
    /// Bind failures, or [`ServeError::Protocol`] when `config.nodes`
    /// is empty (a router with nothing behind it can only say busy).
    pub fn start(config: RouterConfig) -> Result<Self, ServeError> {
        if config.nodes.is_empty() {
            return Err(ServeError::Protocol(
                "router config names no backend nodes".into(),
            ));
        }
        let listener = bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        sram_probe::telemetry::start();
        let inner = Arc::new(RouterInner {
            membership: Mutex::new(Membership::seed(&config.nodes, config.vnodes)),
            pool: Pool::new(Some(config.node_timeout)),
            hedge: Mutex::new(HedgeState {
                computed_at: None,
                delay: Duration::from_millis(config.hedge_ms.max(1)),
            }),
            config,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let poller = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                poll_loop(
                    &inner.membership,
                    &inner.config.nodes,
                    &stop,
                    inner.config.poll_interval,
                    inner.config.node_timeout,
                );
            })
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                accept_loop(&listener, &inner, &stop, &conns);
            })
        };

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            poller: Some(poller),
            conns,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, join connections, join the
    /// poller.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
        sram_probe::telemetry::stop();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.poller.is_some() {
            self.halt();
        }
    }
}

fn bind(addr: &str) -> Result<TcpListener, ServeError> {
    let mut last: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpListener::bind(candidate) {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
    }
    Err(ServeError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })))
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<RouterInner>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let poll = inner.config.poll_interval;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                let stop = Arc::clone(stop);
                let handle = std::thread::spawn(move || {
                    connection_loop(stream, &inner, &stop);
                });
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Serves one client: read a line, route it, write exactly one reply
/// line. The one-in/one-out structure is what makes "zero dropped or
/// duplicate replies" a property of the code rather than a hope.
fn connection_loop(stream: TcpStream, inner: &Arc<RouterInner>, stop: &AtomicBool) {
    use std::io::{BufRead, BufReader, Write};
    let poll = inner.config.poll_interval;
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !line.ends_with('\n') {
                    continue; // timeout split the line; keep reading
                }
                let response = handle_line(inner, line.trim_end());
                line.clear();
                let mut payload = response.render();
                payload.push('\n');
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Routes one request line to a reply.
fn handle_line(inner: &Arc<RouterInner>, line: &str) -> Json {
    let Ok(parsed) = Json::parse(line) else {
        sram_probe::probe_inc!("cluster.request.parse_errors");
        return error_response(
            None,
            &ServeError::Protocol("request is not valid JSON".into()),
        );
    };
    let id = parsed.get("id").and_then(Json::as_str).map(str::to_owned);
    let op = parsed.get("op").and_then(Json::as_str).unwrap_or("");
    if op == "cluster-stats" {
        return cluster_stats(inner, id.as_deref());
    }
    if op == "cluster-metrics" || op == "cluster-health" {
        // Fresh sweep per call, never cached: a stale quantile plane
        // is worse than a slow one.
        let sweep = collector::poll(&inner.config.nodes, |node, request_line| {
            inner.pool.call(node, request_line)
        });
        return if op == "cluster-metrics" {
            collector::cluster_metrics_json(&sweep, id.as_deref())
        } else {
            collector::cluster_health_json(&sweep, id.as_deref())
        };
    }
    // Same strictness as a node: a request the nodes would reject is
    // rejected here, without burning a forward on it.
    let request = match Request::from_line(line) {
        Ok(r) => r,
        Err(e) => {
            sram_probe::probe_inc!("cluster.request.parse_errors");
            return error_response(id.as_deref(), &e);
        }
    };
    if matches!(op, "stats" | "metrics" | "health") {
        return fan_out(inner, id.as_deref(), line, op);
    }
    let key = request.query.key();
    let (candidates, epoch) = {
        let guard = inner
            .membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (
            guard.ring.candidates(key, inner.config.replicas.max(1)),
            guard.ring.epoch(),
        )
    };
    if candidates.is_empty() {
        // No healthy node: tell the client to retry (`busy` is the
        // protocol's retryable backpressure reply).
        return error_response(id.as_deref(), &ServeError::Busy);
    }
    forward(inner, &request, line, id.as_deref(), &candidates, epoch)
}

/// One attempt's outcome, reported back to the forwarding loop. Every
/// attempt reports — including cancelled hedge losers, whose replies
/// the client never sees but whose span trees the stitcher keeps.
struct AttemptReport {
    index: usize,
    via: Via,
    result: Result<Json, ServeError>,
    /// Send time, ns since the forward started (router clock).
    send_ns: u64,
    /// Round-trip time, ns (0 when cancelled before the wire).
    rtt_ns: u64,
    /// `true` when the attempt observed the cancel token — it lost the
    /// race and its reply was discarded.
    loser: bool,
}

/// Forwards a query line to its ring candidates with hedging and
/// failover; returns exactly one reply.
fn forward(
    inner: &Arc<RouterInner>,
    request: &Request,
    line: &str,
    id: Option<&str>,
    candidates: &[String],
    epoch: u64,
) -> Json {
    sram_probe::probe_inc!("cluster.request.routed");
    // A traced request (that is not already carrying someone else's
    // context) gets a distributed trace: one seeded sampling decision
    // here governs every node it touches, and the propagated parent
    // span is what their trees re-root under.
    let trace_ctx = if request.trace && request.trace_ctx.is_none() {
        let key = ROUTE_KEY.fetch_add(1, Ordering::Relaxed);
        let sampled = sram_probe::trace::sample(key).is_some();
        let trace_id = sram_probe::trace::trace_id(key);
        let ctx = TraceCtx {
            trace_id,
            // Chained through the id stream: deterministic, nonzero,
            // and independent of the trace id itself. Masked to 53 bits
            // because span ids ride the wire as JSON numbers (exact
            // integer range of `f64`); the 16-hex trace id is a string
            // and keeps all 64 bits.
            parent_span: (sram_probe::trace::trace_id(trace_id) & ((1 << 53) - 1)).max(1),
            sampled,
        };
        let mut forwarded = request.clone();
        forwarded.trace_ctx = Some(ctx);
        sram_probe::counter("cluster.trace.propagated").inc();
        Some((ctx, forwarded.to_json().render()))
    } else {
        None
    };
    let wire_line: &str = trace_ctx.as_ref().map_or(line, |(_, l)| l.as_str());
    let stitching = trace_ctx.as_ref().is_some_and(|(ctx, _)| ctx.sampled);

    let forward_t0 = Instant::now();
    let (tx, rx) = mpsc::channel::<AttemptReport>();
    let token = CancelToken::never();
    let spawn_attempt = |index: usize, via: Via| {
        let inner = Arc::clone(inner);
        let addr = candidates[index].clone();
        let line = wire_line.to_owned();
        let tx = tx.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            if token.is_cancelled() {
                // Cancelled before the wire was touched: the race was
                // already decided, don't load the node at all.
                sram_probe::counter("cluster.hedge.cancelled").inc();
                let _ = tx.send(AttemptReport {
                    index,
                    via,
                    result: Err(ServeError::Internal("cancelled before send".into())),
                    send_ns: forward_t0.elapsed().as_nanos() as u64,
                    rtt_ns: 0,
                    loser: true,
                });
                return;
            }
            let send_ns = forward_t0.elapsed().as_nanos() as u64;
            let started = Instant::now();
            let result = inner.pool.call(&addr, &line);
            let rtt_ns = started.elapsed().as_nanos() as u64;
            if result.is_ok() {
                sram_probe::probe_record!("cluster.forward.latency_ns", rtt_ns);
                // Ungated: the hedge-delay derivation needs the p99
                // stream even with probes off.
                sram_probe::telemetry::record("cluster.forward.latency_ns", rtt_ns);
            }
            // Lost the race after doing the work: the hedged twin
            // already answered the client, so this reply is discarded —
            // but still reported, so the stitcher can keep the loser's
            // side of the race on the timeline.
            let loser = token.is_cancelled();
            if loser {
                sram_probe::counter("cluster.hedge.cancelled").inc();
            }
            let _ = tx.send(AttemptReport {
                index,
                via,
                result,
                send_ns,
                rtt_ns,
                loser,
            });
        });
    };

    spawn_attempt(0, Via::Primary);
    let mut spawned = 1usize;
    let mut failed = 0usize;
    let mut hedged = false;
    let hedge_after = hedge_delay(inner);
    // Hard ceiling on this forward: every candidate gets its timeout,
    // plus slack. A request can never outwait this — "no hangs" is the
    // soak's first invariant.
    let deadline = Instant::now()
        + inner
            .config
            .node_timeout
            .saturating_mul(candidates.len().max(1) as u32)
        + Duration::from_secs(1);

    let mut winner: Option<AttemptReport> = None;
    let mut reports: Vec<AttemptReport> = Vec::new();
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        if winner.is_some() && reports.len() + 1 >= spawned {
            break; // every attempt reported; nothing left to stitch
        }
        let remaining = deadline - now;
        let wait = if winner.is_none() && !hedged && spawned < candidates.len() {
            hedge_after.min(remaining)
        } else {
            remaining
        };
        match rx.recv_timeout(wait) {
            Ok(report) => {
                if winner.is_none() && !report.loser && report.result.is_ok() {
                    token.cancel();
                    if report.via == Via::Hedge {
                        sram_probe::counter("cluster.hedge.wins").inc();
                    }
                    winner = Some(report);
                    if !stitching {
                        // Untraced: answer now; straggler reports go
                        // to a dropped channel and vanish, as before.
                        break;
                    }
                    continue;
                }
                if winner.is_none() && !report.loser && report.result.is_err() {
                    failed += 1;
                    if spawned < candidates.len() {
                        // The pool's bounded retry already ran; this
                        // node is not answering — move down the ring
                        // now rather than waiting out the hedge timer.
                        sram_probe::probe_inc!("cluster.forward.failovers");
                        spawn_attempt(spawned, Via::Failover);
                        spawned += 1;
                    } else if failed >= spawned {
                        // Every candidate failed: retryable
                        // backpressure.
                        return error_response(id, &ServeError::Busy);
                    }
                }
                reports.push(report);
            }
            Err(RecvTimeoutError::Timeout) => {
                if winner.is_none() && !hedged && spawned < candidates.len() {
                    hedged = true;
                    // Ungated: CI asserts the hedge fired under the
                    // soak's injected `cell.slow` latency.
                    sram_probe::counter("cluster.hedge.fired").inc();
                    spawn_attempt(spawned, Via::Hedge);
                    spawned += 1;
                }
                // Otherwise keep draining until the deadline.
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    token.cancel();
    let Some(winner) = winner else {
        return error_response(
            id,
            &ServeError::Internal("cluster forward timed out on every candidate".into()),
        );
    };

    let total_ns = forward_t0.elapsed().as_nanos() as u64;
    // Winners are only recorded on Ok replies; the Err arm is a
    // defensive fallthrough rather than a reachable path.
    let mut reply = match winner.result {
        Ok(reply) => reply,
        Err(err) => return error_response(id, &err),
    };
    if let Json::Obj(pairs) = &mut reply {
        pairs.push(("node".into(), Json::Str(candidates[winner.index].clone())));
        pairs.push(("epoch".into(), Json::Num(epoch as f64)));
        pairs.push(("via".into(), Json::Str(winner.via.as_str().into())));
    }
    if stitching {
        if let Some((ctx, _)) = &trace_ctx {
            let winner_piece = AttemptPiece {
                node: candidates[winner.index].clone(),
                via: winner.via.as_str(),
                hedge_loser: false,
                send_ns: winner.send_ns,
                rtt_ns: winner.rtt_ns,
                tree: reply.get("trace").cloned(),
                error: None,
            };
            let mut pieces = vec![winner_piece];
            for report in &reports {
                pieces.push(AttemptPiece {
                    node: candidates[report.index].clone(),
                    via: report.via.as_str(),
                    hedge_loser: report.loser,
                    send_ns: report.send_ns,
                    rtt_ns: report.rtt_ns,
                    tree: report
                        .result
                        .as_ref()
                        .ok()
                        .and_then(|r| r.get("trace").cloned()),
                    error: report.result.as_ref().err().map(ToString::to_string),
                });
            }
            pieces.sort_by_key(|p| p.send_ns);
            let losers = pieces
                .iter()
                .filter(|p| p.hedge_loser && p.tree.is_some())
                .count() as u64;
            let stitched = stitch::stitch(ctx, total_ns, &pieces);
            sram_probe::counter("cluster.trace.stitched").inc();
            sram_probe::counter("cluster.trace.losers").add(losers);
            match stitch::validate(&stitched) {
                Ok(spans) => sram_probe::counter("cluster.trace.stitched_spans").add(spans),
                Err(_) => sram_probe::counter("cluster.trace.forests").inc(),
            }
            if let Json::Obj(pairs) = &mut reply {
                pairs.retain(|(k, _)| k != "trace");
                pairs.push(("trace".into(), stitched));
            }
        }
    }
    if total_ns >= slow_threshold_ns() && sram_probe::log::enabled(sram_probe::log::LogLevel::Warn)
    {
        use sram_probe::log::LogValue;
        let mut fields: Vec<(&str, LogValue)> = vec![
            ("op", LogValue::Str(request.query.op().into())),
            ("latency_ms", LogValue::U64(total_ns / 1_000_000)),
            ("via", LogValue::Str(winner.via.as_str().into())),
            ("hedged", LogValue::Bool(hedged)),
        ];
        if let Some(id) = id {
            fields.push(("id", LogValue::Str(id.into())));
        }
        if let Json::Obj(pairs) = &reply {
            // A traced slow query carries its stitched cross-node tree
            // into the log verbatim.
            if let Some((_, tree)) = pairs.iter().find(|(k, _)| k == "trace") {
                fields.push(("trace", LogValue::Raw(tree.render())));
            }
        }
        sram_probe::log::log_event(
            sram_probe::log::LogLevel::Warn,
            "cluster.slow_query",
            &fields,
        );
    }
    reply
}

/// Derives the hedge delay from the windowed p99 of forward latency:
/// `clamp(p99 × 1.2, hedge_ms floor, 250 ms cap)`, recomputed at most
/// every [`HEDGE_RECOMPUTE`]. Cold start (no quantile stream yet)
/// falls back to the floor, so hedging works from the first request.
fn hedge_delay(inner: &RouterInner) -> Duration {
    let mut cached = inner.hedge.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(at) = cached.computed_at {
        if at.elapsed() < HEDGE_RECOMPUTE {
            return cached.delay;
        }
    }
    let floor = inner.config.hedge_ms.max(1) as f64;
    let p99_ms = sram_probe::telemetry::export()
        .quantiles
        .get("cluster.forward.latency_ns")
        .map_or(0.0, |q| q.p99 / 1e6);
    let ms = (p99_ms * 1.2).clamp(floor, HEDGE_CAP_MS.max(floor));
    sram_probe::gauge("cluster.hedge.delay_ms").set(ms);
    cached.computed_at = Some(Instant::now());
    cached.delay = Duration::from_micros((ms * 1_000.0) as u64);
    cached.delay
}

/// Fans an introspection op out to every configured node; the reply
/// carries each node's answer (or its typed error) under `"nodes"`.
fn fan_out(inner: &Arc<RouterInner>, id: Option<&str>, line: &str, op: &str) -> Json {
    sram_probe::probe_inc!("cluster.fanout.requests");
    let mut nodes: Vec<(String, Json)> = Vec::with_capacity(inner.config.nodes.len());
    for node in &inner.config.nodes {
        let reply = inner
            .pool
            .call(node, line)
            .unwrap_or_else(|e| error_response(None, &e));
        nodes.push((node.clone(), reply));
    }
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str(op.into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.push(("nodes".to_owned(), Json::Obj(nodes)));
    Json::Obj(pairs)
}

/// The router-local `cluster-stats` reply: ring membership, per-node
/// poller state, hedge policy, and the router's counters. Never
/// cached, never forwarded.
fn cluster_stats(inner: &Arc<RouterInner>, id: Option<&str>) -> Json {
    let counter = |name: &'static str| Json::Num(sram_probe::counter(name).get() as f64);
    let (epoch, members, vnodes, nodes) = {
        let guard = inner
            .membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let members: Vec<Json> = guard
            .ring
            .members()
            .iter()
            .map(|m| Json::Str(m.clone()))
            .collect();
        let nodes: Vec<Json> = guard
            .states
            .iter()
            .map(|(name, status)| {
                Json::Obj(vec![
                    ("node".into(), Json::Str(name.clone())),
                    ("state".into(), Json::Str(status.state.as_str().into())),
                    ("revision".into(), Json::Num(status.last_revision as f64)),
                    ("failures".into(), Json::Num(f64::from(status.failures))),
                ])
            })
            .collect();
        (guard.ring.epoch(), members, guard.ring.vnodes(), nodes)
    };
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str("cluster-stats".into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.extend([
        ("epoch".to_owned(), Json::Num(epoch as f64)),
        (
            "ring".to_owned(),
            Json::Obj(vec![
                ("members".into(), Json::Arr(members)),
                ("vnodes".into(), Json::Num(vnodes as f64)),
            ]),
        ),
        ("nodes".to_owned(), Json::Arr(nodes)),
        (
            "hedge".to_owned(),
            Json::Obj(vec![
                (
                    "delay_ms".into(),
                    Json::Num(sram_probe::gauge("cluster.hedge.delay_ms").get()),
                ),
                ("fired".into(), counter("cluster.hedge.fired")),
                ("wins".into(), counter("cluster.hedge.wins")),
                ("cancelled".into(), counter("cluster.hedge.cancelled")),
            ]),
        ),
        (
            "forward".to_owned(),
            Json::Obj(vec![
                ("routed".into(), counter("cluster.request.routed")),
                ("retries".into(), counter("cluster.forward.retries")),
                ("failovers".into(), counter("cluster.forward.failovers")),
            ]),
        ),
        (
            "membership".to_owned(),
            Json::Obj(vec![
                ("evicted".into(), counter("cluster.node.evicted")),
                ("rejoined".into(), counter("cluster.node.rejoined")),
                ("drained".into(), counter("cluster.node.drained")),
                ("stale".into(), counter("cluster.health.stale")),
            ]),
        ),
    ]);
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_serve::Client;

    #[test]
    fn config_from_env_falls_back_to_defaults() {
        // The suite must not depend on ambient SRAM_CLUSTER_* values;
        // this asserts the default path only (env overrides are
        // exercised end-to-end by the soak, which sets fields
        // directly).
        let d = RouterConfig::default();
        assert_eq!(d.replicas, 2);
        assert_eq!(d.hedge_ms, 10);
        assert_eq!(d.vnodes, DEFAULT_VNODES);
        assert!(d.nodes.is_empty());
    }

    #[test]
    fn start_refuses_an_empty_node_list() {
        assert!(Router::start(RouterConfig::default()).is_err());
    }

    #[test]
    fn routes_queries_and_answers_cluster_stats_itself() {
        let node = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).unwrap();
        let router = Router::start(RouterConfig {
            nodes: vec![node.local_addr().to_string()],
            replicas: 1,
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();

        let reply = client
            .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#)
            .unwrap();
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            reply.get("node").and_then(Json::as_str),
            Some(node.local_addr().to_string().as_str()),
            "forwarded replies carry the answering node"
        );
        assert_eq!(reply.get("via").and_then(Json::as_str), Some("primary"));
        assert!(reply.get("epoch").and_then(Json::as_u64).is_some());

        // The same canonical query must be a cache hit on the same
        // node — the affinity the ring exists to provide.
        let again = client
            .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#)
            .unwrap();
        assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            again.get("node").and_then(Json::as_str),
            reply.get("node").and_then(Json::as_str),
        );

        let stats = client.call_line(r#"{"op":"cluster-stats"}"#).unwrap();
        assert_eq!(
            stats.get("op").and_then(Json::as_str),
            Some("cluster-stats")
        );
        assert!(stats.get("epoch").and_then(Json::as_u64).is_some());

        let health = client.call_line(r#"{"op":"health"}"#).unwrap();
        let nodes = health.get("nodes").unwrap();
        assert!(
            nodes
                .get(&node.local_addr().to_string())
                .and_then(|n| n.get("result"))
                .and_then(|r| r.get("verdict"))
                .and_then(Json::as_str)
                .is_some(),
            "health fans out per node: {health:?}"
        );

        router.shutdown();
        node.shutdown();
    }

    #[test]
    fn traced_requests_stitch_and_metrics_ops_federate() {
        let node = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).unwrap();
        let router = Router::start(RouterConfig {
            nodes: vec![node.local_addr().to_string()],
            replicas: 1,
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();

        let reply = client
            .call_line(
                r#"{"op":"optimize","capacity_bytes":2048,"flavor":"lvt","method":"m2","trace":true}"#,
            )
            .unwrap();
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
        let tree = reply.get("trace").expect("traced reply carries a tree");
        assert_eq!(
            tree.get("name").and_then(Json::as_str),
            Some("cluster.request"),
            "{}",
            tree.render()
        );
        // One connected timeline: root + attempt + the node's subtree,
        // whose adopted parent is the router's root span.
        let spans = stitch::validate(tree).expect("stitched tree is connected");
        assert!(spans >= 3, "expected a full timeline, got {spans} spans");
        let attempt = &tree.get("children").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            attempt.get("name").and_then(Json::as_str),
            Some("cluster.attempt")
        );
        assert_eq!(
            attempt.get("hedge_loser").and_then(Json::as_bool),
            Some(false)
        );
        // The stitched Chrome export keeps router and node on separate
        // pid lanes.
        let chrome = stitch::chrome_trace(tree);
        assert!(
            chrome.contains("\"args\":{\"name\":\"router\"}"),
            "{chrome}"
        );
        assert!(chrome.contains("\"pid\":2"), "{chrome}");

        let metrics = client.call_line(r#"{"op":"cluster-metrics"}"#).unwrap();
        assert_eq!(
            metrics.get("op").and_then(Json::as_str),
            Some("cluster-metrics")
        );
        let merged = metrics
            .get("merged")
            .and_then(|m| m.get("serve.request.latency_ns"))
            .expect("merged latency histogram");
        assert!(merged.get("p99").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(merged
            .get("buckets")
            .and_then(Json::as_array)
            .is_some_and(|b| !b.is_empty()));
        assert!(metrics
            .get("shards")
            .and_then(|s| s.get(&node.local_addr().to_string()))
            .is_some());

        let health = client.call_line(r#"{"op":"cluster-health"}"#).unwrap();
        assert!(
            health.get("verdict").and_then(Json::as_str).is_some(),
            "{}",
            health.render()
        );
        assert_eq!(health.get("nodes_failed").and_then(Json::as_u64), Some(0));

        router.shutdown();
        node.shutdown();
    }
}
