//! The router: one TCP front door over N serve nodes.
//!
//! Requests arrive on the same line-delimited JSON protocol the nodes
//! speak, so a client cannot tell a router from a node — except that
//! the router stamps every forwarded reply with `"node"` (which node
//! answered), `"epoch"` (the ring generation it routed under), and
//! `"via"` (`primary`/`hedge`/`failover`), which is what lets the
//! cluster soak audit affinity externally.
//!
//! Routing policy per op:
//!
//! * **query ops** (`optimize`, `evaluate-point`, …) — consistent-hash
//!   the request's canonical content-addressed key onto the ring and
//!   forward to the primary owner. Cache affinity falls out: the same
//!   canonical query always lands on the node whose LRU already holds
//!   it. If the primary is slow, a second replica is hedged after a
//!   windowed-p99-derived delay; first reply wins, the loser observes
//!   a shared [`CancelToken`] and discards its reply. A transport
//!   failure fails over to the next ring candidate immediately.
//! * **introspection ops** (`stats`, `metrics`, `health`) — never
//!   cached and meaningless to shard: fan out to every configured node
//!   and return the per-node replies under `"nodes"`.
//! * **`cluster-stats`** — answered by the router itself (the nodes
//!   would reject the op): ring membership, per-node poller state, and
//!   the router's own counters. Never cached, never forwarded.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sram_faults::CancelToken;
use sram_serve::{error_response, Json, Request, ServeError};

use crate::poller::{poll_loop, Membership};
use crate::pool::Pool;
use crate::ring::DEFAULT_VNODES;

/// Hedge delay is recomputed from the telemetry window at most this
/// often — the export walks every counter, too heavy per request.
const HEDGE_RECOMPUTE: Duration = Duration::from_millis(250);

/// Upper bound on the derived hedge delay: beyond this a hedge no
/// longer rescues tail latency, it just doubles load.
const HEDGE_CAP_MS: f64 = 250.0;

/// Router sizing and timing knobs. [`RouterConfig::from_env`] reads
/// the `SRAM_CLUSTER_*` family; in-process clusters set fields
/// directly.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Backend node addresses (static membership; the ring holds the
    /// healthy subset).
    pub nodes: Vec<String>,
    /// Distinct ring candidates tried per key: the primary plus
    /// `replicas - 1` hedge/failover targets.
    pub replicas: usize,
    /// Floor (and cold-start value) for the hedge delay, milliseconds.
    pub hedge_ms: u64,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Health-poll cadence.
    pub poll_interval: Duration,
    /// Per-attempt node read timeout.
    pub node_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_owned(),
            nodes: Vec::new(),
            replicas: 2,
            hedge_ms: 10,
            vnodes: DEFAULT_VNODES,
            poll_interval: Duration::from_millis(25),
            node_timeout: Duration::from_secs(10),
        }
    }
}

impl RouterConfig {
    /// Reads the `SRAM_CLUSTER_NODES` / `SRAM_CLUSTER_REPLICAS` /
    /// `SRAM_CLUSTER_HEDGE_MS` / `SRAM_CLUSTER_VNODES` environment
    /// family over the defaults.
    #[must_use]
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(nodes) = std::env::var(crate::SRAM_CLUSTER_NODES_ENV) {
            config.nodes = nodes
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_owned)
                .collect();
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_REPLICAS_ENV) {
            config.replicas = (v as usize).max(1);
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_HEDGE_MS_ENV) {
            config.hedge_ms = v;
        }
        if let Some(v) = env_u64(crate::SRAM_CLUSTER_VNODES_ENV) {
            config.vnodes = (v as usize).max(1);
        }
        config
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Cached hedge-delay derivation (see [`hedge_delay`]).
struct HedgeState {
    computed_at: Option<Instant>,
    delay: Duration,
}

/// State shared by the acceptor, connection threads, and poller.
struct RouterInner {
    config: RouterConfig,
    membership: Mutex<Membership>,
    pool: Pool,
    hedge: Mutex<HedgeState>,
}

/// How an attempt reached its node — stamped onto the reply.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Via {
    Primary,
    Hedge,
    Failover,
}

impl Via {
    fn as_str(self) -> &'static str {
        match self {
            Self::Primary => "primary",
            Self::Hedge => "hedge",
            Self::Failover => "failover",
        }
    }
}

/// A running router; [`Router::shutdown`] (or drop) stops it.
pub struct Router {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    poller: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Router {
    /// Binds the front door and starts the acceptor and health poller.
    ///
    /// # Errors
    ///
    /// Bind failures, or [`ServeError::Protocol`] when `config.nodes`
    /// is empty (a router with nothing behind it can only say busy).
    pub fn start(config: RouterConfig) -> Result<Self, ServeError> {
        if config.nodes.is_empty() {
            return Err(ServeError::Protocol(
                "router config names no backend nodes".into(),
            ));
        }
        let listener = bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        sram_probe::telemetry::start();
        let inner = Arc::new(RouterInner {
            membership: Mutex::new(Membership::seed(&config.nodes, config.vnodes)),
            pool: Pool::new(Some(config.node_timeout)),
            hedge: Mutex::new(HedgeState {
                computed_at: None,
                delay: Duration::from_millis(config.hedge_ms.max(1)),
            }),
            config,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let poller = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                poll_loop(
                    &inner.membership,
                    &inner.config.nodes,
                    &stop,
                    inner.config.poll_interval,
                    inner.config.node_timeout,
                );
            })
        };
        let acceptor = {
            let inner = Arc::clone(&inner);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                accept_loop(&listener, &inner, &stop, &conns);
            })
        };

        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            poller: Some(poller),
            conns,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, join connections, join the
    /// poller.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut conns = self.conns.lock().unwrap_or_else(PoisonError::into_inner);
            conns.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        if let Some(poller) = self.poller.take() {
            let _ = poller.join();
        }
        sram_probe::telemetry::stop();
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.poller.is_some() {
            self.halt();
        }
    }
}

fn bind(addr: &str) -> Result<TcpListener, ServeError> {
    let mut last: Option<std::io::Error> = None;
    for candidate in addr.to_socket_addrs()? {
        match TcpListener::bind(candidate) {
            Ok(listener) => return Ok(listener),
            Err(e) => last = Some(e),
        }
    }
    Err(ServeError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    })))
}

fn accept_loop(
    listener: &TcpListener,
    inner: &Arc<RouterInner>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let poll = inner.config.poll_interval;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                let stop = Arc::clone(stop);
                let handle = std::thread::spawn(move || {
                    connection_loop(stream, &inner, &stop);
                });
                conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                std::thread::sleep(poll);
            }
            Err(_) => std::thread::sleep(poll),
        }
    }
}

/// Serves one client: read a line, route it, write exactly one reply
/// line. The one-in/one-out structure is what makes "zero dropped or
/// duplicate replies" a property of the code rather than a hope.
fn connection_loop(stream: TcpStream, inner: &Arc<RouterInner>, stop: &AtomicBool) {
    use std::io::{BufRead, BufReader, Write};
    let poll = inner.config.poll_interval;
    if stream.set_read_timeout(Some(poll)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                if !line.ends_with('\n') {
                    continue; // timeout split the line; keep reading
                }
                let response = handle_line(inner, line.trim_end());
                line.clear();
                let mut payload = response.render();
                payload.push('\n');
                if writer.write_all(payload.as_bytes()).is_err() || writer.flush().is_err() {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Routes one request line to a reply.
fn handle_line(inner: &Arc<RouterInner>, line: &str) -> Json {
    let Ok(parsed) = Json::parse(line) else {
        sram_probe::probe_inc!("cluster.request.parse_errors");
        return error_response(
            None,
            &ServeError::Protocol("request is not valid JSON".into()),
        );
    };
    let id = parsed.get("id").and_then(Json::as_str).map(str::to_owned);
    let op = parsed.get("op").and_then(Json::as_str).unwrap_or("");
    if op == "cluster-stats" {
        return cluster_stats(inner, id.as_deref());
    }
    // Same strictness as a node: a request the nodes would reject is
    // rejected here, without burning a forward on it.
    let request = match Request::from_line(line) {
        Ok(r) => r,
        Err(e) => {
            sram_probe::probe_inc!("cluster.request.parse_errors");
            return error_response(id.as_deref(), &e);
        }
    };
    if matches!(op, "stats" | "metrics" | "health") {
        return fan_out(inner, id.as_deref(), line, op);
    }
    let key = request.query.key();
    let (candidates, epoch) = {
        let guard = inner
            .membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (
            guard.ring.candidates(key, inner.config.replicas.max(1)),
            guard.ring.epoch(),
        )
    };
    if candidates.is_empty() {
        // No healthy node: tell the client to retry (`busy` is the
        // protocol's retryable backpressure reply).
        return error_response(id.as_deref(), &ServeError::Busy);
    }
    forward(inner, line, id.as_deref(), &candidates, epoch)
}

/// Forwards a query line to its ring candidates with hedging and
/// failover; returns exactly one reply.
fn forward(
    inner: &Arc<RouterInner>,
    line: &str,
    id: Option<&str>,
    candidates: &[String],
    epoch: u64,
) -> Json {
    sram_probe::probe_inc!("cluster.request.routed");
    let (tx, rx) = mpsc::channel::<(usize, Via, Result<Json, ServeError>)>();
    let token = CancelToken::never();
    let spawn_attempt = |index: usize, via: Via| {
        let inner = Arc::clone(inner);
        let addr = candidates[index].clone();
        let line = line.to_owned();
        let tx = tx.clone();
        let token = token.clone();
        std::thread::spawn(move || {
            if token.is_cancelled() {
                // Cancelled before the wire was touched: the race was
                // already decided, don't load the node at all.
                sram_probe::counter("cluster.hedge.cancelled").inc();
                return;
            }
            let started = Instant::now();
            let result = inner.pool.call(&addr, &line);
            if result.is_ok() {
                let ns = started.elapsed().as_nanos() as u64;
                sram_probe::probe_record!("cluster.forward.latency_ns", ns);
                // Ungated: the hedge-delay derivation needs the p99
                // stream even with probes off.
                sram_probe::telemetry::record("cluster.forward.latency_ns", ns);
            }
            if token.is_cancelled() {
                // Lost the race after doing the work: the hedged twin
                // already answered the client, so this reply is
                // discarded — the loser-cancel half of hedging.
                sram_probe::counter("cluster.hedge.cancelled").inc();
                return;
            }
            let _ = tx.send((index, via, result));
        });
    };

    spawn_attempt(0, Via::Primary);
    let mut spawned = 1usize;
    let mut failed = 0usize;
    let mut hedged = false;
    let hedge_after = hedge_delay(inner);
    // Hard ceiling on this forward: every candidate gets its timeout,
    // plus slack. A request can never outwait this — "no hangs" is the
    // soak's first invariant.
    let deadline = Instant::now()
        + inner
            .config
            .node_timeout
            .saturating_mul(candidates.len().max(1) as u32)
        + Duration::from_secs(1);

    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let remaining = deadline - now;
        let wait = if !hedged && spawned < candidates.len() {
            hedge_after.min(remaining)
        } else {
            remaining
        };
        match rx.recv_timeout(wait) {
            Ok((index, via, Ok(mut reply))) => {
                token.cancel();
                if via == Via::Hedge {
                    sram_probe::counter("cluster.hedge.wins").inc();
                }
                if let Json::Obj(pairs) = &mut reply {
                    pairs.push(("node".into(), Json::Str(candidates[index].clone())));
                    pairs.push(("epoch".into(), Json::Num(epoch as f64)));
                    pairs.push(("via".into(), Json::Str(via.as_str().into())));
                }
                return reply;
            }
            Ok((_, _, Err(_))) => {
                failed += 1;
                if spawned < candidates.len() {
                    // The pool's bounded retry already ran; this node
                    // is not answering — move down the ring now rather
                    // than waiting out the hedge timer.
                    sram_probe::probe_inc!("cluster.forward.failovers");
                    spawn_attempt(spawned, Via::Failover);
                    spawned += 1;
                } else if failed >= spawned {
                    // Every candidate failed: retryable backpressure.
                    return error_response(id, &ServeError::Busy);
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !hedged && spawned < candidates.len() {
                    hedged = true;
                    // Ungated: CI asserts the hedge fired under the
                    // soak's injected `cell.slow` latency.
                    sram_probe::counter("cluster.hedge.fired").inc();
                    spawn_attempt(spawned, Via::Hedge);
                    spawned += 1;
                }
                // Otherwise keep draining until the deadline.
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    token.cancel();
    error_response(
        id,
        &ServeError::Internal("cluster forward timed out on every candidate".into()),
    )
}

/// Derives the hedge delay from the windowed p99 of forward latency:
/// `clamp(p99 × 1.2, hedge_ms floor, 250 ms cap)`, recomputed at most
/// every [`HEDGE_RECOMPUTE`]. Cold start (no quantile stream yet)
/// falls back to the floor, so hedging works from the first request.
fn hedge_delay(inner: &RouterInner) -> Duration {
    let mut cached = inner.hedge.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(at) = cached.computed_at {
        if at.elapsed() < HEDGE_RECOMPUTE {
            return cached.delay;
        }
    }
    let floor = inner.config.hedge_ms.max(1) as f64;
    let p99_ms = sram_probe::telemetry::export()
        .quantiles
        .get("cluster.forward.latency_ns")
        .map_or(0.0, |q| q.p99 / 1e6);
    let ms = (p99_ms * 1.2).clamp(floor, HEDGE_CAP_MS.max(floor));
    sram_probe::gauge("cluster.hedge.delay_ms").set(ms);
    cached.computed_at = Some(Instant::now());
    cached.delay = Duration::from_micros((ms * 1_000.0) as u64);
    cached.delay
}

/// Fans an introspection op out to every configured node; the reply
/// carries each node's answer (or its typed error) under `"nodes"`.
fn fan_out(inner: &Arc<RouterInner>, id: Option<&str>, line: &str, op: &str) -> Json {
    sram_probe::probe_inc!("cluster.fanout.requests");
    let mut nodes: Vec<(String, Json)> = Vec::with_capacity(inner.config.nodes.len());
    for node in &inner.config.nodes {
        let reply = inner
            .pool
            .call(node, line)
            .unwrap_or_else(|e| error_response(None, &e));
        nodes.push((node.clone(), reply));
    }
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str(op.into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.push(("nodes".to_owned(), Json::Obj(nodes)));
    Json::Obj(pairs)
}

/// The router-local `cluster-stats` reply: ring membership, per-node
/// poller state, hedge policy, and the router's counters. Never
/// cached, never forwarded.
fn cluster_stats(inner: &Arc<RouterInner>, id: Option<&str>) -> Json {
    let counter = |name: &'static str| Json::Num(sram_probe::counter(name).get() as f64);
    let (epoch, members, vnodes, nodes) = {
        let guard = inner
            .membership
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let members: Vec<Json> = guard
            .ring
            .members()
            .iter()
            .map(|m| Json::Str(m.clone()))
            .collect();
        let nodes: Vec<Json> = guard
            .states
            .iter()
            .map(|(name, status)| {
                Json::Obj(vec![
                    ("node".into(), Json::Str(name.clone())),
                    ("state".into(), Json::Str(status.state.as_str().into())),
                    ("revision".into(), Json::Num(status.last_revision as f64)),
                    ("failures".into(), Json::Num(f64::from(status.failures))),
                ])
            })
            .collect();
        (guard.ring.epoch(), members, guard.ring.vnodes(), nodes)
    };
    let mut pairs = vec![
        ("status".to_owned(), Json::Str("ok".into())),
        ("op".to_owned(), Json::Str("cluster-stats".into())),
    ];
    if let Some(id) = id {
        pairs.push(("id".to_owned(), Json::Str(id.into())));
    }
    pairs.extend([
        ("epoch".to_owned(), Json::Num(epoch as f64)),
        (
            "ring".to_owned(),
            Json::Obj(vec![
                ("members".into(), Json::Arr(members)),
                ("vnodes".into(), Json::Num(vnodes as f64)),
            ]),
        ),
        ("nodes".to_owned(), Json::Arr(nodes)),
        (
            "hedge".to_owned(),
            Json::Obj(vec![
                (
                    "delay_ms".into(),
                    Json::Num(sram_probe::gauge("cluster.hedge.delay_ms").get()),
                ),
                ("fired".into(), counter("cluster.hedge.fired")),
                ("wins".into(), counter("cluster.hedge.wins")),
                ("cancelled".into(), counter("cluster.hedge.cancelled")),
            ]),
        ),
        (
            "forward".to_owned(),
            Json::Obj(vec![
                ("routed".into(), counter("cluster.request.routed")),
                ("retries".into(), counter("cluster.forward.retries")),
                ("failovers".into(), counter("cluster.forward.failovers")),
            ]),
        ),
        (
            "membership".to_owned(),
            Json::Obj(vec![
                ("evicted".into(), counter("cluster.node.evicted")),
                ("rejoined".into(), counter("cluster.node.rejoined")),
                ("drained".into(), counter("cluster.node.drained")),
                ("stale".into(), counter("cluster.health.stale")),
            ]),
        ),
    ]);
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_serve::Client;

    #[test]
    fn config_from_env_falls_back_to_defaults() {
        // The suite must not depend on ambient SRAM_CLUSTER_* values;
        // this asserts the default path only (env overrides are
        // exercised end-to-end by the soak, which sets fields
        // directly).
        let d = RouterConfig::default();
        assert_eq!(d.replicas, 2);
        assert_eq!(d.hedge_ms, 10);
        assert_eq!(d.vnodes, DEFAULT_VNODES);
        assert!(d.nodes.is_empty());
    }

    #[test]
    fn start_refuses_an_empty_node_list() {
        assert!(Router::start(RouterConfig::default()).is_err());
    }

    #[test]
    fn routes_queries_and_answers_cluster_stats_itself() {
        let node = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).unwrap();
        let router = Router::start(RouterConfig {
            nodes: vec![node.local_addr().to_string()],
            replicas: 1,
            ..RouterConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(router.local_addr()).unwrap();
        client.set_timeout(Some(Duration::from_secs(60))).unwrap();

        let reply = client
            .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#)
            .unwrap();
        assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            reply.get("node").and_then(Json::as_str),
            Some(node.local_addr().to_string().as_str()),
            "forwarded replies carry the answering node"
        );
        assert_eq!(reply.get("via").and_then(Json::as_str), Some("primary"));
        assert!(reply.get("epoch").and_then(Json::as_u64).is_some());

        // The same canonical query must be a cache hit on the same
        // node — the affinity the ring exists to provide.
        let again = client
            .call_line(r#"{"op":"optimize","capacity_bytes":1024,"flavor":"hvt","method":"m2"}"#)
            .unwrap();
        assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));
        assert_eq!(
            again.get("node").and_then(Json::as_str),
            reply.get("node").and_then(Json::as_str),
        );

        let stats = client.call_line(r#"{"op":"cluster-stats"}"#).unwrap();
        assert_eq!(
            stats.get("op").and_then(Json::as_str),
            Some("cluster-stats")
        );
        assert!(stats.get("epoch").and_then(Json::as_u64).is_some());

        let health = client.call_line(r#"{"op":"health"}"#).unwrap();
        let nodes = health.get("nodes").unwrap();
        assert!(
            nodes
                .get(&node.local_addr().to_string())
                .and_then(|n| n.get("result"))
                .and_then(|r| r.get("verdict"))
                .and_then(Json::as_str)
                .is_some(),
            "health fans out per node: {health:?}"
        );

        router.shutdown();
        node.shutdown();
    }
}
