//! `sram-cluster` — a sharded serve cluster: consistent-hash router,
//! hedged requests, and health-driven failover over N `sram-serve`
//! nodes.
//!
//! One `sram-serve` process has one job queue and one in-process
//! cache; the ROADMAP's "heavy traffic" north star needs scale-out.
//! This crate adds the missing layer without touching the wire
//! protocol: a [`Router`] binds the same line-delimited JSON front
//! door the nodes speak and
//!
//! * **shards by content** — each query's canonical content-addressed
//!   key ([`sram_serve::Query::key`]) is placed on a consistent-hash
//!   [`Ring`] of virtual nodes, so the same question always lands on
//!   the node whose LRU already holds the answer (cache affinity), and
//!   a membership change moves only ~`1/N` of the key space;
//! * **hedges the tail** — a second replica is fired after a
//!   windowed-p99-derived delay when the primary is slow; first reply
//!   wins, the loser observes a shared
//!   [`CancelToken`](sram_faults::CancelToken) and discards its reply;
//! * **drains and rebalances from health** — a background poller walks
//!   every node's `health` op (using its monotonic `revision` to skip
//!   stale snapshots) through a healthy → draining → down state
//!   machine that drives ring membership, with bounded retry + backoff
//!   on every forwarding path;
//! * **reports itself** — `cluster.*` probes, windowed telemetry, and
//!   a router-local, never-cached `cluster-stats` op;
//! * **traces end-to-end** — a traced request gets a propagated
//!   `trace_ctx` (trace id + parent span + seeded sampling decision);
//!   each node re-roots its span tree under the router's root, and the
//!   router stitches winner *and* cancelled hedge loser into one
//!   clock-rebased timeline ([`stitch`]);
//! * **federates metrics** — never-cached `cluster-metrics` and
//!   `cluster-health` ops merge the nodes' windowed `LogLinear`
//!   histograms bucket-wise ([`collector`]), so cluster-wide
//!   p50/p90/p99 and the SLO burn are computed over one merged
//!   distribution instead of averaged per-node percentiles.
//!
//! Deployment knobs are the `SRAM_CLUSTER_NODES`,
//! `SRAM_CLUSTER_REPLICAS`, `SRAM_CLUSTER_HEDGE_MS`, and
//! `SRAM_CLUSTER_VNODES` environment variables
//! ([`RouterConfig::from_env`]); in-process clusters (tests, the
//! `cluster-soak` reproducer) fill [`RouterConfig`] directly and spawn
//! nodes with [`sram_serve::spawn_local_node`]. See DESIGN.md §14 for
//! the design rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod poller;
mod pool;
mod ring;
mod router;

pub mod affinity;
pub mod collector;
pub mod stitch;

pub use poller::{NodeState, NodeStatus, DOWN_AFTER_FAILURES};
pub use ring::{splitmix64, Ring, DEFAULT_VNODES};
pub use router::{Router, RouterConfig};

/// Comma-separated backend node addresses for a router launched from
/// the environment ([`RouterConfig::from_env`]).
pub const SRAM_CLUSTER_NODES_ENV: &str = "SRAM_CLUSTER_NODES";

/// Distinct ring candidates tried per key (primary + hedge/failover
/// targets); default 2.
pub const SRAM_CLUSTER_REPLICAS_ENV: &str = "SRAM_CLUSTER_REPLICAS";

/// Floor (and cold-start value) of the derived hedge delay in
/// milliseconds; default 10.
pub const SRAM_CLUSTER_HEDGE_MS_ENV: &str = "SRAM_CLUSTER_HEDGE_MS";

/// Virtual nodes per ring member; default 64.
pub const SRAM_CLUSTER_VNODES_ENV: &str = "SRAM_CLUSTER_VNODES";
