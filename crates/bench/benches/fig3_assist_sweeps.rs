//! Benchmark E3–E8: the read/write assist characterization sweeps of
//! Figs. 3 and 5.

use criterion::{criterion_group, criterion_main, Criterion};
use sram_cell::{AssistVoltages, CellCharacterizer};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::Voltage;

fn assist_sweeps(c: &mut Criterion) {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(31);
    let mut group = c.benchmark_group("fig3_fig5");
    group.sample_size(10);

    group.bench_function("rsnm_with_assists", |b| {
        let bias = AssistVoltages::nominal(vdd)
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vssc(Voltage::from_millivolts(-240.0));
        b.iter(|| chr.read_snm(&bias).expect("rsnm"));
    });

    group.bench_function("read_current", |b| {
        let bias = AssistVoltages::nominal(vdd).with_vssc(Voltage::from_millivolts(-120.0));
        b.iter(|| chr.read_current(&bias).expect("iread"));
    });

    group.bench_function("write_margin_bisection", |b| {
        let bias = AssistVoltages::nominal(vdd).with_vwl(Voltage::from_millivolts(540.0));
        b.iter(|| chr.write_margin(&bias).expect("wm"));
    });

    group.bench_function("write_delay_transient", |b| {
        let bias = AssistVoltages::nominal(vdd).with_vwl(Voltage::from_millivolts(540.0));
        b.iter(|| chr.write_delay(&bias).expect("write delay"));
    });

    group.finish();
}

criterion_group!(benches, assist_sweeps);
criterion_main!(benches);
