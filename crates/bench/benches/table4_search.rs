//! Benchmark E9/E15: the exhaustive Table-4 search.
//!
//! The paper reports that all its results are produced "in less than two
//! minutes" on an Intel E7-8837 server; this bench measures our per-search
//! and full-table throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sram_array::Capacity;
use sram_coopt::{CoOptimizationFramework, DesignSpace, Method};
use sram_device::VtFlavor;

fn single_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);

    group.bench_function("search_4kb_hvt_m2", |b| {
        b.iter_batched(
            CoOptimizationFramework::paper_mode,
            |mut fw| {
                fw.optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M2)
                    .expect("search succeeds")
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("search_4kb_hvt_m2_parallel", |b| {
        b.iter_batched(
            || CoOptimizationFramework::paper_mode().with_threads(8),
            |mut fw| {
                fw.optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M2)
                    .expect("search succeeds")
            },
            BatchSize::PerIteration,
        );
    });

    group.bench_function("search_16kb_coarse", |b| {
        b.iter_batched(
            || CoOptimizationFramework::paper_mode().with_space(DesignSpace::coarse()),
            |mut fw| {
                fw.optimize(Capacity::from_bytes(16 * 1024), VtFlavor::Hvt, Method::M2)
                    .expect("search succeeds")
            },
            BatchSize::PerIteration,
        );
    });

    group.finish();
}

criterion_group!(benches, single_search);
criterion_main!(benches);
