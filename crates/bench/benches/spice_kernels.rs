//! Benchmarks of the circuit-simulation substrate itself: DC operating
//! points, butterfly sweeps, and write transients on the 6T cell — the
//! kernels every characterization experiment is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use sram_cell::{AssistVoltages, Sram6t};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_spice::{DcSolver, DcSweep};
use sram_units::Voltage;

fn spice_kernels(c: &mut Criterion) {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let cell = Sram6t::new(&lib, VtFlavor::Hvt);
    let bias = AssistVoltages::nominal(vdd);
    let mut group = c.benchmark_group("spice");

    group.bench_function("dc_op_6t_hold", |b| {
        let (ckt, nodes) = cell.hold_circuit(&bias, vdd);
        b.iter(|| {
            DcSolver::new()
                .nodeset(nodes.q, Voltage::ZERO)
                .nodeset(nodes.qb, vdd)
                .solve(&ckt)
                .expect("op")
        });
    });

    group.bench_function("vtc_sweep_41pts", |b| {
        let (ckt, _u, _out) = cell.vtc_circuit(
            sram_cell::VtcHalf::Left,
            sram_cell::VtcMode::Read,
            &bias,
            vdd,
        );
        b.iter(|| {
            DcSweep::new("VU", Voltage::ZERO, vdd, 41)
                .run(&ckt)
                .expect("sweep")
        });
    });

    group.finish();
}

criterion_group!(benches, spice_kernels);
criterion_main!(benches);
