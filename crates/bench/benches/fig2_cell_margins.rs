//! Benchmark E1/E2: the simulated cell-margin measurements behind Fig. 2
//! (one HSNM butterfly and one leakage operating point).

use criterion::{criterion_group, criterion_main, Criterion};
use sram_cell::{AssistVoltages, CellCharacterizer};
use sram_device::{DeviceLibrary, VtFlavor};

fn cell_margins(c: &mut Criterion) {
    let lib = DeviceLibrary::sevennm();
    let bias = AssistVoltages::nominal(lib.nominal_vdd());
    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);

    for (name, flavor) in [("hvt", VtFlavor::Hvt), ("lvt", VtFlavor::Lvt)] {
        let chr = CellCharacterizer::new(&lib, flavor).with_vtc_points(41);
        group.bench_function(format!("hold_snm_{name}"), |b| {
            b.iter(|| chr.hold_snm(&bias).expect("snm"));
        });
        group.bench_function(format!("leakage_{name}"), |b| {
            b.iter(|| chr.leakage_power(&bias).expect("leakage"));
        });
    }
    group.finish();
}

criterion_group!(benches, cell_margins);
criterion_main!(benches);
