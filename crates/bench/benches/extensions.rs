//! Benchmarks of the extension experiments: banking search, coordinate
//! descent, Monte Carlo yield.

use criterion::{criterion_group, criterion_main, Criterion};
use sram_array::{ArrayParams, Capacity, Periphery};
use sram_cell::{
    AssistVoltages, CellCharacterization, CellCharacterizer, MonteCarloConfig, YieldAnalyzer,
};
use sram_coopt::{
    optimize_banked, CoordinateDescent, DesignSpace, EnergyDelayProduct, YieldConstraint,
};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::Voltage;

fn extensions(c: &mut Criterion) {
    let lib = DeviceLibrary::sevennm();
    let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::coarse();
    let constraint = YieldConstraint::paper_delta(lib.nominal_vdd());
    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    group.bench_function("banked_search_16kb", |b| {
        b.iter(|| {
            optimize_banked(
                Capacity::from_bytes(16 * 1024),
                &cell,
                &periphery,
                &params,
                &space,
                constraint,
                64,
                3,
            )
            .expect("banked search")
        });
    });

    let full_space = DesignSpace::paper_default();
    group.bench_function("coordinate_descent_4kb_full_space", |b| {
        b.iter(|| {
            CoordinateDescent::new(&cell, &periphery, &params, &full_space, constraint, 64)
                .run(Capacity::from_bytes(4096), &EnergyDelayProduct)
                .expect("descent")
        });
    });

    group.bench_function("monte_carlo_8_samples", |b| {
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt);
        let bias = AssistVoltages::nominal(lib.nominal_vdd())
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vwl(Voltage::from_millivolts(540.0));
        b.iter(|| {
            YieldAnalyzer::new(
                chr.clone(),
                MonteCarloConfig {
                    samples: 8,
                    seed: 7,
                    vtc_points: 21,
                },
            )
            .run(&bias)
            .expect("mc")
        });
    });

    group.finish();
}

criterion_group!(benches, extensions);
criterion_main!(benches);
