//! Benchmark E10–E13: the Fig. 7 capacity sweep (full Table-4 equivalent
//! workload) and the per-design-point array-model evaluation kernel.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Periphery};
use sram_cell::CellCharacterization;
use sram_device::DeviceLibrary;
use sram_units::Voltage;

fn capacity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);

    group.bench_function("full_capacity_sweep_coarse", |b| {
        b.iter_batched(
            || (),
            |()| {
                // Coarse version of the Fig. 7 computation (the full one
                // is the table4 bench).
                let mut fw = sram_coopt::CoOptimizationFramework::paper_mode()
                    .with_space(sram_coopt::DesignSpace::coarse());
                fw.optimize_table4().expect("table4")
            },
            BatchSize::PerIteration,
        );
    });

    // The inner kernel the exhaustive search amortizes: one design-point
    // evaluation through Tables 1-3 and Eqs. (2)-(5).
    let lib = DeviceLibrary::sevennm();
    let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let org = ArrayOrganization::new(512, 64, 64).expect("org");
    group.bench_function("array_model_evaluate", |b| {
        b.iter(|| {
            ArrayModel::new(org, &cell, &periphery, &params)
                .with_precharge_fins(25)
                .with_write_fins(3)
                .with_vssc(Voltage::from_millivolts(-240.0))
                .evaluate()
                .expect("evaluate")
        });
    });

    group.finish();
}

criterion_group!(benches, capacity_sweep);
criterion_main!(benches);
