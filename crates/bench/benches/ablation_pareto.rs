//! Benchmark A2: full-space evaluation with Pareto-front maintenance —
//! the cost basis for a dominance-pruned search variant.

use criterion::{criterion_group, criterion_main, Criterion};
use sram_array::Capacity;

fn pareto(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    group.bench_function("pareto_front_4kb", |b| {
        b.iter(|| sram_bench::ablation::pareto_ablation(Capacity::from_bytes(4096)).expect("ok"));
    });

    group.bench_function("rail_pinning_sweep_1kb", |b| {
        b.iter(|| {
            sram_bench::ablation::rail_pinning_sweep(Capacity::from_bytes(1024)).expect("ok")
        });
    });

    group.finish();
}

criterion_group!(benches, pareto);
criterion_main!(benches);
