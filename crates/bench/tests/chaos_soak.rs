//! End-to-end chaos-soak run. Lives in its own test binary (own
//! process) because the soak installs a process-global fault plan that
//! would otherwise leak panics and latency into unrelated unit tests.

use std::time::Duration;

use sram_bench::chaos;

#[test]
fn chaos_soak_answers_everything_and_reproduces_fault_counts() {
    let c = chaos::soak(2).expect("soak runs");
    assert!(c.replay_identical, "seeded replay must be bit-identical");
    assert_eq!(c.answered, c.requests, "exactly-once accounting");
    // Both planned panic fires are consumed, but batching decides
    // whether they land in one doomed batch or two.
    assert!(
        (1..=2).contains(&c.worker_panics),
        "planned panics fire: got {}",
        c.worker_panics
    );
    assert_eq!(c.retry_recovered, 1, "retry recovers the LUT build");
    assert_eq!(c.injected_probe, 6, "2 nan + 1 slow + 2 panic + 1 drop");
    assert_eq!(c.injected_probe, c.injected_registry, "no counter drift");
    assert!(c.counts_reproduced, "same plan + seed, same schedule");
    assert!(c.deadline_typed, "typed cancellation");
    assert!(c.deadline_elapsed < Duration::from_millis(250));
    // Every panic fire strands the drawn job (and possibly batchmates),
    // each of which must have received a typed internal reply.
    assert!(
        c.internal_replies >= 2,
        "stranded requests get typed replies: got {}",
        c.internal_replies
    );
    assert_eq!(c.reconnects, 1, "one injected connection drop");

    let text = chaos::report(&c).expect("healthy soak renders a report");
    assert!(text.contains("answered exactly once"));
}
