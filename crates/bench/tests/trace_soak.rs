//! End-to-end trace-soak run. Lives in its own test binary (own
//! process) because the soak installs a process-global fault plan and
//! a sampling override that would otherwise leak into unrelated tests.

use sram_bench::trace_soak;

#[test]
fn trace_soak_stitches_every_tree_and_federates_quantiles() {
    let t = trace_soak::soak(2).expect("soak runs");
    assert_eq!(t.answered, t.requests, "exactly-once accounting");
    assert_eq!(t.forest_replies, 0, "every stitched tree is connected");
    assert_eq!(t.forests, 0, "the router never counted a forest");
    assert!(t.hedge_fired >= 1, "slow characterization forces a hedge");
    assert!(t.failovers >= 1, "the node kill forces a failover");
    assert_eq!(t.injected_kills, 1, "exactly one injected kill");
    assert!(
        t.loser_replies >= 1 && t.losers >= 1,
        "the cancelled hedge twin stays on the timeline (marked hedge_loser)"
    );
    assert!(
        t.propagated >= t.answered as u64,
        "every answered request propagated a trace context"
    );
    assert!(t.stitched >= t.answered as u64, "every reply was stitched");
    assert!(
        t.chrome_pids >= 2,
        "router and nodes get separate pid lanes"
    );
    assert_eq!(t.nodes_failed, 1, "the dead node is a hole in the plane");

    let text = trace_soak::report(&t).expect("healthy soak renders a report");
    assert!(text.contains("answered exactly once"));
    assert!(text.contains("0 forests"));
    assert!(text.contains("merged p50"));
}
