//! End-to-end cluster-soak run. Lives in its own test binary (own
//! process) because the soak installs a process-global fault plan that
//! would otherwise leak its node kill and panics into unrelated tests.

use sram_bench::cluster;

#[test]
fn cluster_soak_fails_over_and_preserves_affinity() {
    let c = cluster::soak(2).expect("soak runs");
    assert_eq!(c.answered, c.requests, "exactly-once accounting");
    assert!(c.hedge_fired >= 1, "slow characterization forces a hedge");
    assert!(c.evicted >= 1, "the killed node is evicted");
    assert!(c.rejoined >= 1, "the respawned node rejoins");
    assert_eq!(c.injected_kills, 1, "exactly one injected kill");
    assert_eq!(c.affinity_violations, 0, "{:?}", c.violation_details);
    assert!(
        c.affinity_checked >= 1,
        "repeat queries exercise the affinity audit"
    );
    assert_eq!(c.final_healthy, c.nodes, "the cluster heals completely");
    assert!(c.final_epoch > 0, "membership churn bumps the ring epoch");

    let text = cluster::report(&c).expect("healthy soak renders a report");
    assert!(text.contains("answered exactly once"));
    assert!(text.contains("violations"));
}
