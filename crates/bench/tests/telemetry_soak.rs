//! End-to-end run of the `telemetry-soak` experiment.
//!
//! The soak mutates process globals (trace sampling state, the
//! telemetry ring, the fault registry), so everything lives in ONE
//! test function in its own integration binary — `cargo test` runs
//! sibling `#[test]`s concurrently, and a second test in this file
//! would race the globals.

#[test]
fn telemetry_soak_passes_every_invariant() {
    let report = sram_bench::telemetry::run(2).expect("telemetry soak holds its invariants");
    assert!(report.contains("replay identical"), "{report}");
    assert!(report.contains("health: ok"), "{report}");
    assert!(report.contains("0 ring drops"), "{report}");
    assert!(
        report.contains("health: degraded") || report.contains("health: unhealthy"),
        "fault round must move the verdict:\n{report}"
    );
}
