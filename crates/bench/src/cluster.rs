//! `cluster-soak`: opt-in failover experiment — a 3-node in-process
//! cluster behind the consistent-hash router, driven by concurrent
//! clients while a fixed fault plan kills a node mid-traffic, hard-
//! failing on any hang, dropped or duplicate reply, missed eviction or
//! rejoin, or key-affinity violation.
//!
//! Three phases:
//!
//! 1. **soak** — four clients push optimize queries through the
//!    [`Router`] while the plan injects a slow characterization (which
//!    forces a hedge past the 5 ms floor), two worker panics, two
//!    connection drops (absorbed by the router's bounded forward
//!    retry), and one node kill. A supervisor thread watches
//!    `cluster-stats` for the eviction, confirms the node really
//!    refuses dials (a connection-drop-driven false eviction heals by
//!    itself), respawns it on the same address, and waits for the
//!    poller to rejoin it.
//! 2. **steady state** — a second client wave runs on the healed ring,
//!    accumulating same-epoch repeat observations for the affinity
//!    audit, after which the cluster must settle back to every node
//!    healthy.
//! 3. **audit** — every `ok` reply was stamped `node`/`epoch`/`via` by
//!    the router; [`affinity::audit`] replays the observations and
//!    must find zero same-epoch, same-key primary replies answered by
//!    different nodes.
//!
//! Exactly-once accounting is structural, as in the chaos soak: each
//! client ends with an id-echo round trip, so a doubled or dropped
//! reply anywhere earlier surfaces as a misaligned echo.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use sram_cluster::affinity::{self, Observation};
use sram_cluster::{Router, RouterConfig};
use sram_faults::{FaultPlan, FaultRule};
use sram_serve::{Client, Json, Request, Server};

/// Cluster size; the plan kills one of these mid-soak.
const NODES: usize = 3;
/// Concurrent soak clients per wave.
const CLIENTS: usize = 4;
/// Requests each client must see answered exactly once, per wave.
const REQUESTS_PER_CLIENT: usize = 8;
/// Worker threads per node.
const NODE_WORKERS: usize = 2;
/// Job-queue depth per node.
const NODE_QUEUE: usize = 16;
/// Resend budget per request (panics, busy rejections, and the node
/// kill all trigger resends; a request needing more is hung).
const MAX_ATTEMPTS: usize = 12;
/// Client-side reply timeout — the hang detector.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);
/// Wall budget for the supervisor's evict → respawn → rejoin cycle.
const SUPERVISOR_BUDGET: Duration = Duration::from_secs(120);
/// Wall budget for the cluster to settle back to all-healthy after
/// the second wave (health verdicts are windowed, so injected errors
/// take a moment to age out).
const SETTLE_BUDGET: Duration = Duration::from_secs(60);

/// Structured outcome (consumed by the unit tests; the report is
/// built from it).
#[derive(Debug, Clone)]
pub struct ClusterSoak {
    /// Cluster size.
    pub nodes: usize,
    /// Requests issued across both waves.
    pub requests: usize,
    /// Requests answered `ok` exactly once (must equal `requests`).
    pub answered: usize,
    /// Typed `internal` replies observed (worker panics, forwarded
    /// through the router with routing tags intact).
    pub internal_replies: usize,
    /// `busy` backpressure replies observed.
    pub busy_replies: usize,
    /// `cluster.hedge.fired` delta — the slow characterization must
    /// push at least one request past the hedge delay.
    pub hedge_fired: u64,
    /// `cluster.forward.failovers` delta (the killed node's requests
    /// move down the ring immediately).
    pub failovers: u64,
    /// `cluster.forward.retries` delta (connection drops absorbed by
    /// the pool).
    pub retries: u64,
    /// `cluster.node.evicted` delta (must be >= 1: the kill).
    pub evicted: u64,
    /// `cluster.node.rejoined` delta (must be >= 1: the respawn).
    pub rejoined: u64,
    /// `serve.node.injected_kills` delta (must be exactly the plan's
    /// cap of 1).
    pub injected_kills: u64,
    /// Sorted per-point fire counts from the registry.
    pub counts: Vec<(String, u64)>,
    /// Same-epoch repeat observations audited (must be > 0).
    pub affinity_checked: u64,
    /// Affinity violations (must be 0).
    pub affinity_violations: u64,
    /// One line per violation, for the failure report.
    pub violation_details: Vec<String>,
    /// Ring epoch at the end of the run (> 0: membership changed).
    pub final_epoch: u64,
    /// Nodes reporting healthy at the end (must equal `nodes`).
    pub final_healthy: usize,
}

/// The fixed soak plan. Every rule is `p = 1` with a cap, so totals
/// are timing-independent: 1 + 2 + 2 + 1 = 6 injected faults.
fn soak_plan() -> FaultPlan {
    FaultPlan::new(0x00DA_C209)
        .rule(FaultRule::always("cell.slow", 1).with_latency_ms(60))
        .rule(FaultRule::always("serve.worker_panic", 2))
        .rule(FaultRule::always("serve.conn_drop", 2))
        .rule(FaultRule::always("serve.node_kill", 1))
}

/// Expected per-point fire counts for [`soak_plan`] once every point
/// has been drawn past its cap.
fn expected_counts() -> Vec<(String, u64)> {
    vec![
        ("cell.slow".to_owned(), 1),
        ("serve.conn_drop".to_owned(), 2),
        ("serve.node_kill".to_owned(), 1),
        ("serve.worker_panic".to_owned(), 2),
    ]
}

fn counter(name: &'static str) -> u64 {
    sram_probe::counter(name).get()
}

/// Router/serve counter snapshot, so the soak reports deltas instead
/// of process-lifetime totals.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    hedge_fired: u64,
    failovers: u64,
    retries: u64,
    evicted: u64,
    rejoined: u64,
    injected_kills: u64,
}

impl Snapshot {
    fn take() -> Self {
        Self {
            hedge_fired: counter("cluster.hedge.fired"),
            failovers: counter("cluster.forward.failovers"),
            retries: counter("cluster.forward.retries"),
            evicted: counter("cluster.node.evicted"),
            rejoined: counter("cluster.node.rejoined"),
            injected_kills: counter("serve.node.injected_kills"),
        }
    }
}

/// Per-client tally from one wave.
#[derive(Debug, Default, Clone, Copy)]
struct Tally {
    answered: usize,
    internal: usize,
    busy: usize,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.answered += other.answered;
        self.internal += other.internal;
        self.busy += other.busy;
    }
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(REPLY_TIMEOUT))
        .map_err(|e| format!("set_timeout: {e}"))?;
    Ok(client)
}

/// Node addresses in the given poller state, read from a
/// `cluster-stats` reply.
fn nodes_in_state(stats: &Json, state: &str) -> Vec<String> {
    stats
        .get("nodes")
        .and_then(Json::as_array)
        .map(|nodes| {
            nodes
                .iter()
                .filter(|n| n.get("state").and_then(Json::as_str) == Some(state))
                .filter_map(|n| n.get("node").and_then(Json::as_str).map(str::to_owned))
                .collect()
        })
        .unwrap_or_default()
}

/// Rebinds a node on its original address. The killed node's old
/// sockets may linger briefly, so bind is retried under a deadline.
fn respawn(addr: &str) -> Result<Server, String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match sram_serve::spawn_local_node(addr, NODE_WORKERS, NODE_QUEUE) {
            Ok(server) => return Ok(server),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(format!("respawn of {addr} never bound: {e}"));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// The failover supervisor: waits for the router to evict the killed
/// node, restarts it on the same address, and waits for the health
/// poller to rejoin it. Owns every node handle so it can shut down
/// and replace the dead one.
fn supervise(
    router: SocketAddr,
    mut servers: BTreeMap<String, Server>,
) -> Result<BTreeMap<String, Server>, String> {
    let deadline = Instant::now() + SUPERVISOR_BUDGET;
    let mut client = connect(router)?;
    let mut respawned: Option<String> = None;
    loop {
        if Instant::now() > deadline {
            return Err(match respawned {
                Some(addr) => format!("node {addr} was respawned but never rejoined the ring"),
                None => "no node was evicted within the supervisor budget".to_owned(),
            });
        }
        let stats = client
            .call_line(r#"{"op":"cluster-stats"}"#)
            .map_err(|e| format!("cluster-stats poll: {e}"))?;
        match &respawned {
            None => {
                for addr in nodes_in_state(&stats, "down") {
                    // Only a node that actually refuses dials is the
                    // injected kill; a connection-drop-driven false
                    // eviction heals on the next successful poll.
                    if std::net::TcpStream::connect(&addr).is_err() {
                        let dead = servers
                            .remove(&addr)
                            .ok_or_else(|| format!("unknown node {addr} reported down"))?;
                        dead.shutdown();
                        let fresh = respawn(&addr)?;
                        servers.insert(addr.clone(), fresh);
                        respawned = Some(addr);
                        break;
                    }
                }
            }
            Some(addr) => {
                if nodes_in_state(&stats, "healthy").iter().any(|a| a == addr) {
                    return Ok(servers);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Drives one client's request schedule through the router: resend on
/// `internal` and `busy`, reconnect on a dropped connection, hard-fail
/// on a timeout (hang) or an attempt-budget blowout. Every `ok` reply
/// must carry the router's routing tags, which become the affinity
/// observations.
fn run_client(
    addr: SocketAddr,
    index: usize,
    wave: &str,
) -> Result<(Tally, Vec<Observation>), String> {
    let mut client = connect(addr)?;
    let mut tally = Tally::default();
    let mut observations = Vec::new();
    let capacities = [128u64, 256, 512, 1024, 2048, 4096];
    for r in 0..REQUESTS_PER_CLIENT {
        let id = format!("{wave}{index}-r{r}");
        let line = format!(
            r#"{{"id":"{id}","op":"optimize","capacity_bytes":{},"flavor":"hvt","method":"m2"}}"#,
            capacities[(index + r) % capacities.len()]
        );
        let key = Request::from_line(&line)
            .map_err(|e| format!("request {id} failed to parse locally: {e}"))?
            .query
            .key();
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(format!(
                    "request {id} unanswered after {MAX_ATTEMPTS} attempts"
                ));
            }
            match client.call_line(&line) {
                Ok(reply) => match reply.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        if reply.get("id").and_then(Json::as_str) != Some(id.as_str()) {
                            return Err(format!(
                                "reply stream misaligned at {id}: {}",
                                reply.render()
                            ));
                        }
                        let (Some(node), Some(epoch), Some(via)) = (
                            reply.get("node").and_then(Json::as_str),
                            reply.get("epoch").and_then(Json::as_u64),
                            reply.get("via").and_then(Json::as_str),
                        ) else {
                            return Err(format!(
                                "reply to {id} is missing its routing tags: {}",
                                reply.render()
                            ));
                        };
                        observations.push(Observation {
                            key,
                            epoch,
                            node: node.to_owned(),
                            via: via.to_owned(),
                        });
                        tally.answered += 1;
                        break;
                    }
                    Some("internal") => tally.internal += 1,
                    Some("busy") => {
                        tally.busy += 1;
                        std::thread::sleep(Duration::from_millis(25));
                    }
                    other => {
                        return Err(format!(
                            "request {id}: unexpected status {other:?}: {}",
                            reply.render()
                        ))
                    }
                },
                Err(sram_serve::ServeError::Remote(_)) => {
                    // The router itself never drops clients; tolerate a
                    // racing shutdown-era EOF by redialing.
                    client = connect(addr)?;
                }
                Err(sram_serve::ServeError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(format!("request {id}: reply timed out — cluster hang"));
                }
                Err(e) => return Err(format!("request {id}: transport error: {e}")),
            }
        }
    }
    // Exactly-once epilogue: `cluster-stats` is answered by the router
    // itself, so this echo is immune to node faults — a doubled or
    // dropped reply earlier on this connection misaligns it.
    let fin = format!("fin-{wave}{index}");
    let reply = client
        .call_line(&format!(r#"{{"id":"{fin}","op":"cluster-stats"}}"#))
        .map_err(|e| format!("final echo: {e}"))?;
    if reply.get("id").and_then(Json::as_str) != Some(fin.as_str()) {
        return Err(format!(
            "double or dropped reply detected: final echo was {}",
            reply.render()
        ));
    }
    Ok((tally, observations))
}

/// One client wave. Returns the aggregate tally and observations.
fn wave(addr: SocketAddr, name: &'static str) -> Result<(Tally, Vec<Observation>), String> {
    let results: Vec<Result<(Tally, Vec<Observation>), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| scope.spawn(move || run_client(addr, i, name)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("client thread panicked".to_owned()),
            })
            .collect()
    });
    let mut total = Tally::default();
    let mut observations = Vec::new();
    for result in results {
        let (tally, obs) = result?;
        total.absorb(tally);
        observations.extend(obs);
    }
    Ok((total, observations))
}

/// `run_waves` outcome: the combined tally, every tagged observation,
/// and the (possibly respawned) server set handed back for shutdown.
type WavesOutcome = Result<(Tally, Vec<Observation>, BTreeMap<String, Server>), String>;

/// Both traffic phases: wave one concurrent with the supervisor's
/// evict/respawn/rejoin cycle, wave two on the healed ring.
fn run_waves(addr: SocketAddr, servers: BTreeMap<String, Server>) -> WavesOutcome {
    let (wave_one, servers) = std::thread::scope(|scope| {
        let supervisor = scope.spawn(move || supervise(addr, servers));
        let traffic = scope.spawn(move || wave(addr, "a"));
        let wave_one = match traffic.join() {
            Ok(result) => result,
            Err(_) => Err("wave thread panicked".to_owned()),
        };
        let servers = match supervisor.join() {
            Ok(result) => result,
            Err(_) => Err("supervisor thread panicked".to_owned()),
        };
        (wave_one, servers)
    });
    let servers = servers?;
    let (mut total, mut observations) = wave_one?;
    let (two, obs) = wave(addr, "b")?;
    total.absorb(two);
    observations.extend(obs);
    Ok((total, observations, servers))
}

/// Waits for every node to report healthy again (windowed health
/// verdicts need a moment to age out the injected errors), then
/// returns the final `cluster-stats` reply.
fn settle(addr: SocketAddr) -> Result<Json, String> {
    let deadline = Instant::now() + SETTLE_BUDGET;
    let mut client = connect(addr)?;
    loop {
        let stats = client
            .call_line(r#"{"op":"cluster-stats"}"#)
            .map_err(|e| format!("final cluster-stats: {e}"))?;
        if nodes_in_state(&stats, "healthy").len() == NODES || Instant::now() > deadline {
            return Ok(stats);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Runs the full soak.
///
/// # Errors
///
/// Any hang, unanswered or doubly-answered request, failed respawn, or
/// cluster that never rejoined its killed node.
pub fn soak(_threads: usize) -> Result<ClusterSoak, String> {
    // Counter assertions need the probe layer on regardless of the
    // environment.
    sram_probe::set_level(sram_probe::Level::Summary);
    crate::chaos::silence_injected_panics();
    let before = Snapshot::take();

    let mut servers: BTreeMap<String, Server> = BTreeMap::new();
    for _ in 0..NODES {
        let server = sram_serve::spawn_local_node("127.0.0.1:0", NODE_WORKERS, NODE_QUEUE)
            .map_err(|e| format!("node spawn: {e}"))?;
        servers.insert(server.local_addr().to_string(), server);
    }
    let router = Router::start(RouterConfig {
        nodes: servers.keys().cloned().collect(),
        replicas: 2,
        hedge_ms: 5,
        poll_interval: Duration::from_millis(20),
        ..RouterConfig::default()
    })
    .map_err(|e| format!("router start: {e}"))?;
    let addr = router.local_addr();

    // Let the first poll round see every node healthy, so the kill
    // lands under traffic rather than on the poller's first dial.
    std::thread::sleep(Duration::from_millis(100));
    sram_faults::install(&soak_plan());

    let outcome = run_waves(addr, servers);
    let counts = sram_faults::counts();
    sram_faults::uninstall();
    let (tally, observations, servers) = match outcome {
        Ok(v) => v,
        Err(e) => {
            router.shutdown();
            return Err(e);
        }
    };

    let final_stats = settle(addr);
    router.shutdown();
    for (_, server) in servers {
        server.shutdown();
    }
    let final_stats = final_stats?;

    let audit = affinity::audit(&observations);
    let after = Snapshot::take();
    Ok(ClusterSoak {
        nodes: NODES,
        requests: 2 * CLIENTS * REQUESTS_PER_CLIENT,
        answered: tally.answered,
        internal_replies: tally.internal,
        busy_replies: tally.busy,
        hedge_fired: after.hedge_fired - before.hedge_fired,
        failovers: after.failovers - before.failovers,
        retries: after.retries - before.retries,
        evicted: after.evicted - before.evicted,
        rejoined: after.rejoined - before.rejoined,
        injected_kills: after.injected_kills - before.injected_kills,
        counts,
        affinity_checked: audit.checked,
        affinity_violations: audit.violations,
        violation_details: audit.details,
        final_epoch: final_stats.get("epoch").and_then(Json::as_u64).unwrap_or(0),
        final_healthy: nodes_in_state(&final_stats, "healthy").len(),
    })
}

/// Formats the cluster-soak report from a finished [`ClusterSoak`],
/// enforcing every invariant.
///
/// # Errors
///
/// Any invariant violation: unanswered requests, a silent hedge, a
/// missed eviction or rejoin, a wrong kill count, fault-count drift,
/// an affinity violation, or a cluster that did not heal.
pub fn report(c: &ClusterSoak) -> Result<String, String> {
    let mut out =
        String::from("Cluster soak (sram-cluster): failover under a consistent-hash router\n\n");
    out.push_str(&format!(
        "  soak:     {} requests over 2 waves x {CLIENTS} clients -> {} answered exactly once\n",
        c.requests, c.answered
    ));
    out.push_str(&format!(
        "            {} internal replies (worker panics forwarded), {} busy\n",
        c.internal_replies, c.busy_replies
    ));
    out.push_str(&format!(
        "  routing:  hedges fired {}, failovers {}, pool retries {}\n",
        c.hedge_fired, c.failovers, c.retries
    ));
    out.push_str(&format!(
        "  failover: {} evicted, {} rejoined ({} injected kill); final epoch {}, {}/{} healthy\n",
        c.evicted, c.rejoined, c.injected_kills, c.final_epoch, c.final_healthy, c.nodes
    ));
    let count_list: Vec<String> = c
        .counts
        .iter()
        .map(|(point, fires)| format!("{point}={fires}"))
        .collect();
    out.push_str(&format!(
        "  faults:   per-point fires: {}\n",
        count_list.join(", ")
    ));
    out.push_str(&format!(
        "  affinity: {} same-epoch repeats audited, {} violations\n",
        c.affinity_checked, c.affinity_violations
    ));

    if c.answered != c.requests {
        return Err(format!(
            "{} of {} requests answered",
            c.answered, c.requests
        ));
    }
    if c.hedge_fired < 1 {
        return Err("no hedge fired despite the injected slow characterization".to_owned());
    }
    if c.evicted < 1 {
        return Err("the killed node was never evicted".to_owned());
    }
    if c.rejoined < 1 {
        return Err("the respawned node never rejoined the ring".to_owned());
    }
    if c.injected_kills != 1 {
        return Err(format!(
            "expected exactly 1 injected node kill, saw {}",
            c.injected_kills
        ));
    }
    if c.counts != expected_counts() {
        return Err(format!("fault counts drifted: {:?}", c.counts));
    }
    if c.affinity_violations != 0 {
        return Err(format!(
            "{} affinity violations:\n{}",
            c.affinity_violations,
            c.violation_details.join("\n")
        ));
    }
    if c.affinity_checked < 1 {
        return Err("the affinity audit never saw a same-epoch repeat".to_owned());
    }
    if c.final_healthy != c.nodes {
        return Err(format!(
            "cluster never healed: {}/{} nodes healthy at the end",
            c.final_healthy, c.nodes
        ));
    }
    Ok(out)
}

/// Runs the soak and renders the invariant-checked report.
///
/// # Errors
///
/// Propagates [`soak`] failures and [`report`] invariant violations.
pub fn run(threads: usize) -> Result<String, String> {
    report(&soak(threads)?)
}

// The soak installs a process-global fault plan, so its end-to-end
// test lives in `tests/cluster_soak.rs` (its own process). Only
// global-free pieces are tested here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_plan_caps_sum_to_the_expected_injection_total() {
        let total: u64 = expected_counts().iter().map(|(_, fires)| fires).sum();
        assert_eq!(total, 6, "1 slow + 2 drop + 1 kill + 2 panic");
        let mut set = sram_faults::ActiveSet::new(&soak_plan());
        for _ in 0..1_000 {
            for (point, _) in expected_counts() {
                set.decide(&point);
            }
        }
        assert_eq!(set.counts(), expected_counts(), "caps bound every point");
        assert_eq!(set.injected_total(), total);
    }

    #[test]
    fn nodes_in_state_reads_the_cluster_stats_shape() {
        let stats = Json::parse(
            r#"{"status":"ok","nodes":[
                {"node":"127.0.0.1:1","state":"healthy","revision":3,"failures":0},
                {"node":"127.0.0.1:2","state":"down","revision":0,"failures":2},
                {"node":"127.0.0.1:3","state":"healthy","revision":2,"failures":0}
            ]}"#,
        )
        .unwrap();
        assert_eq!(
            nodes_in_state(&stats, "healthy"),
            vec!["127.0.0.1:1".to_owned(), "127.0.0.1:3".to_owned()]
        );
        assert_eq!(
            nodes_in_state(&stats, "down"),
            vec!["127.0.0.1:2".to_owned()]
        );
        assert!(nodes_in_state(&Json::parse("{}").unwrap(), "down").is_empty());
    }

    fn healthy_outcome() -> ClusterSoak {
        ClusterSoak {
            nodes: NODES,
            requests: 64,
            answered: 64,
            internal_replies: 2,
            busy_replies: 0,
            hedge_fired: 5,
            failovers: 1,
            retries: 2,
            evicted: 1,
            rejoined: 1,
            injected_kills: 1,
            counts: expected_counts(),
            affinity_checked: 40,
            affinity_violations: 0,
            violation_details: Vec::new(),
            final_epoch: 4,
            final_healthy: NODES,
        }
    }

    #[test]
    fn report_names_the_invariants() {
        let text = report(&healthy_outcome()).expect("healthy outcome renders");
        assert!(text.contains("answered exactly once"));
        assert!(text.contains("1 evicted, 1 rejoined"));
        assert!(text.contains("0 violations"));
    }

    type Sabotage = fn(&mut ClusterSoak);

    #[test]
    fn report_rejects_each_broken_invariant() {
        let broken: [(&str, Sabotage); 8] = [
            ("answered", |c| c.answered -= 1),
            ("hedge", |c| c.hedge_fired = 0),
            ("evicted", |c| c.evicted = 0),
            ("rejoined", |c| c.rejoined = 0),
            ("kills", |c| c.injected_kills = 2),
            ("counts", |c| c.counts.clear()),
            ("affinity", |c| c.affinity_violations = 1),
            ("healed", |c| c.final_healthy = 2),
        ];
        for (label, sabotage) in broken {
            let mut c = healthy_outcome();
            sabotage(&mut c);
            assert!(report(&c).is_err(), "{label} violation must be fatal");
        }
    }
}
