//! `bench-trajectory`: the performance trajectory of one query's life —
//! search throughput, cache-hit latency, and the cost of the tracing
//! layer itself — written to `BENCH_trajectory.json` for CI trend
//! tracking.
//!
//! Six phases:
//!
//! 1. **search** — characterize + optimize one technology through the
//!    framework directly (no serving layer), reporting wall times and
//!    search throughput (design points examined per second).
//! 2. **serve** — the same optimization through a fresh [`Engine`]:
//!    cold wall time, cached-repeat latency, and a TCP `stats` round
//!    trip that must return a non-empty probe snapshot.
//! 3. **router** — the same optimization through a one-node cluster
//!    router: cold wall time via the router, then the warm cache-hit
//!    round trip via the router against the same hit dialed straight
//!    at the node — the difference is the router's per-request
//!    overhead (forward thread + extra TCP hop), tracked per run in
//!    the history file.
//! 4. **trace** — the same optimization through a fresh engine in
//!    *full-simulation* mode with `"trace": true` (the paper-model
//!    characterization is analytic and never enters the spice or cell
//!    layers): the captured events must export well-formed Chrome JSON
//!    and the flame summary must name spans from all four instrumented
//!    layers (`spice`, `cell`, `coopt`, `serve`).
//! 5. **overhead** — a microbenchmark of the *disabled* `trace_span!`
//!    fast path. The per-call cost times the span count of the traced
//!    run, divided by that run's wall time, bounds what its span sites
//!    would cost with tracing off; the bound must stay under
//!    [`MAX_DISABLED_OVERHEAD`].
//! 6. **trace_stitch** — a microbenchmark of the router-side span
//!    stitcher: assembling and validating one cross-node timeline
//!    (winner + cancelled hedge loser carrying the phase-4 span tree)
//!    is what every traced, sampled forward pays on top of the request
//!    itself; the per-call cost relative to the traced wall must stay
//!    under [`MAX_STITCH_OVERHEAD`].
//!
//! Smoke mode (`SRAM_BENCH_SMOKE=1`) shrinks the microbenchmark so CI
//! can run the whole experiment in seconds; the JSON records which mode
//! produced it.

use std::time::Instant;

use sram_array::Capacity;
use sram_coopt::{CoOptimizationFramework, DesignSpace, EnergyDelayProduct, Method};
use sram_device::VtFlavor;
use sram_probe::Level;
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

/// Hard ceiling on the disabled-tracing overhead bound: the
/// instrumentation must cost less than 5 % of the traced workload's
/// wall time when tracing is off.
pub const MAX_DISABLED_OVERHEAD: f64 = 0.05;

/// Hard ceiling on the span-stitching overhead: assembling and
/// validating one cross-node timeline must cost less than 5 % of the
/// traced workload's wall time (in practice it is orders of magnitude
/// below — this is a regression tripwire, not a tuning target).
pub const MAX_STITCH_OVERHEAD: f64 = 0.05;

/// Output file written by [`run`] (in the working directory).
pub const OUTPUT_FILE: &str = "BENCH_trajectory.json";

/// Trajectory history schema: `{"schema_version":2,"entries":[…]}`,
/// newest entry last. Version 1 was a single overwritten snapshot; a
/// v1 (or corrupt) file is discarded and the history restarts.
pub const SCHEMA_VERSION: f64 = 2.0;

/// Most entries kept in the history file — old runs age out so the
/// file stays reviewable in a diff.
pub const MAX_HISTORY: usize = 100;

/// The workload every phase measures: one Table-4-style optimization.
const CAPACITY_BYTES: u64 = 4096;
const FLAVOR: VtFlavor = VtFlavor::Hvt;
const METHOD: Method = Method::M2;

/// Structured outcome of the trajectory bench.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Smoke mode (`SRAM_BENCH_SMOKE=1`)?
    pub smoke: bool,
    /// Worker threads used by the search.
    pub threads: usize,
    /// Cell characterization wall time, seconds.
    pub characterize_wall_s: f64,
    /// Exhaustive search wall time, seconds.
    pub optimize_wall_s: f64,
    /// Design points examined by the search.
    pub examined: u64,
    /// Search throughput, points per second.
    pub points_per_s: f64,
    /// Cold (uncached) serve wall time, nanoseconds.
    pub serve_cold_ns: u128,
    /// Cached-repeat latency, nanoseconds.
    pub cache_hit_ns: u128,
    /// `serve_cold_ns / cache_hit_ns`.
    pub cache_speedup: f64,
    /// Did the TCP `stats` query return a non-empty probe snapshot?
    pub stats_ok: bool,
    /// Cold (uncached) wall time via the one-node router, nanoseconds.
    pub router_cold_ns: u128,
    /// Warm cache-hit round trip via the router, nanoseconds.
    pub router_hit_ns: u128,
    /// The same warm cache hit dialed straight at the node, nanoseconds.
    pub direct_hit_ns: u128,
    /// `router_hit_ns - direct_hit_ns`: the router's per-request cost
    /// (may be noisy-negative on a loaded machine).
    pub router_overhead_ns: f64,
    /// Spans captured by the traced run.
    pub trace_spans: usize,
    /// Events overwritten by ring overflow during the traced run.
    pub trace_dropped: u64,
    /// Chrome export size, bytes.
    pub chrome_bytes: usize,
    /// Did the Chrome export validate (parse + B/E pairing per lane)?
    pub chrome_valid: bool,
    /// Did the flame summary name spans from all four layers?
    pub layers_ok: bool,
    /// Wall time of the traced run, nanoseconds.
    pub traced_wall_ns: u128,
    /// Per-call cost of a *disabled* `trace_span!`, nanoseconds.
    pub disabled_ns_per_call: f64,
    /// `disabled_ns_per_call × trace_spans / traced_wall_ns`.
    pub disabled_overhead_ratio: f64,
    /// Spans in the microbench's stitched timeline (router root, two
    /// attempts, and both node subtrees).
    pub stitch_spans: u64,
    /// Per-call cost of `stitch` + `validate`, nanoseconds.
    pub stitch_ns_per_call: f64,
    /// `stitch_ns_per_call / traced_wall_ns`.
    pub stitch_overhead_ratio: f64,
}

fn smoke_mode() -> bool {
    std::env::var("SRAM_BENCH_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn engine(threads: usize) -> Engine {
    Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    )
}

fn workload_line(trace: bool) -> String {
    let trace_field = if trace { r#","trace":true"# } else { "" };
    format!(
        r#"{{"op":"optimize","capacity_bytes":{CAPACITY_BYTES},"flavor":"hvt","method":"m2"{trace_field}}}"#
    )
}

/// Validates a Chrome trace export the hard way: parse it with the
/// wire-JSON parser, then replay every `B`/`E` against a per-lane
/// stack (LIFO nesting, no unmatched ends, nothing left open).
pub(crate) fn chrome_export_is_well_formed(chrome: &str) -> bool {
    let Ok(parsed) = Json::parse(chrome) else {
        return false;
    };
    let Some(events) = parsed.get("traceEvents").and_then(Json::as_array) else {
        return false;
    };
    let mut stacks: Vec<(f64, Vec<String>)> = Vec::new();
    for event in events {
        let (Some(ph), Some(tid), Some(name)) = (
            event.get("ph").and_then(Json::as_str),
            event.get("tid").and_then(Json::as_f64),
            event.get("name").and_then(Json::as_str),
        ) else {
            return false;
        };
        let lane = match stacks.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                stacks.push((tid, Vec::new()));
                stacks.len() - 1
            }
        };
        match ph {
            "B" => stacks[lane].1.push(name.to_string()),
            "E" => {
                if stacks[lane].1.pop().as_deref() != Some(name) {
                    return false; // unmatched or misnested end
                }
            }
            "X" => {} // complete events carry their own duration
            "M" => {} // metadata (process_name lane labels)
            _ => return false,
        }
    }
    !events.is_empty() && stacks.iter().all(|(_, stack)| stack.is_empty())
}

/// Runs all six phases.
///
/// # Errors
///
/// Fails on any phase error and on a broken invariant (stats snapshot
/// empty, malformed Chrome export, missing layer, overhead over
/// budget).
pub fn bench(threads: usize) -> Result<Trajectory, String> {
    let smoke = smoke_mode();
    // The stats phase asserts a *non-empty* probe snapshot, so metric
    // collection must be on regardless of the environment.
    if !sram_probe::enabled(Level::Summary) {
        sram_probe::set_level(Level::Summary);
    }

    // Phase 1: raw search throughput (untraced baseline).
    let framework = CoOptimizationFramework::paper_mode()
        .with_space(DesignSpace::coarse())
        .with_threads(threads);
    let started = Instant::now();
    let cell = framework
        .characterize_cell(FLAVOR, METHOD)
        .map_err(|e| format!("characterize failed: {e}"))?;
    let characterize_wall_s = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let design = framework
        .optimize_with_cell(
            &cell,
            Capacity::from_bytes(CAPACITY_BYTES as usize),
            FLAVOR,
            METHOD,
            &EnergyDelayProduct,
        )
        .map_err(|e| format!("optimize failed: {e}"))?;
    let optimize_wall_s = started.elapsed().as_secs_f64();
    let examined = design.stats.examined as u64;
    let points_per_s = examined as f64 / optimize_wall_s.max(1e-9);

    // Phase 2: the same workload through the serving layer.
    let serve_engine = std::sync::Arc::new(engine(threads));
    let request = Request::from_line(&workload_line(false)).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let cold = serve_engine.handle(&request);
    let serve_cold_ns = started.elapsed().as_nanos();
    let started = Instant::now();
    let warm = serve_engine.handle(&request);
    let cache_hit_ns = started.elapsed().as_nanos().max(1);
    if warm.get("cached").and_then(Json::as_bool) != Some(true)
        || cold.get("status").and_then(Json::as_str) != Some("ok")
    {
        return Err("serve phase: warm repeat was not a cache hit".into());
    }

    // TCP stats round trip: live snapshot over the wire.
    let server = Server::start(
        std::sync::Arc::clone(&serve_engine),
        ServerConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let mut client = Client::connect(server.local_addr()).map_err(|e| e.to_string())?;
    let stats = client
        .call_line(r#"{"op":"stats"}"#)
        .map_err(|e| e.to_string())?;
    drop(client);
    server.shutdown();
    // Non-empty snapshot: the serve requests above must have recorded
    // at least their own request counter.
    let stats_ok = stats.get("status").and_then(Json::as_str) == Some("ok")
        && stats
            .get("result")
            .and_then(|r| r.get("probe"))
            .and_then(|p| p.get("counters"))
            .and_then(|c| c.get("serve.request.total"))
            .is_some()
        && stats
            .get("result")
            .and_then(|r| r.get("uptime_s"))
            .and_then(Json::as_f64)
            .is_some_and(|s| s >= 0.0);
    if !stats_ok {
        return Err(format!("stats phase: empty snapshot: {}", stats.render()));
    }

    // Phase 3: the same workload through a one-node cluster router —
    // the cold forward, then the warm cache hit via the router against
    // the same hit dialed straight at the node. The difference is the
    // router's per-request overhead.
    let node = sram_serve::spawn_local_node("127.0.0.1:0", 2, 16).map_err(|e| e.to_string())?;
    let router = sram_cluster::Router::start(sram_cluster::RouterConfig {
        nodes: vec![node.local_addr().to_string()],
        replicas: 1,
        ..sram_cluster::RouterConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let mut via_router = Client::connect(router.local_addr()).map_err(|e| e.to_string())?;
    let line = workload_line(false);
    let started = Instant::now();
    let cold = via_router.call_line(&line).map_err(|e| e.to_string())?;
    let router_cold_ns = started.elapsed().as_nanos();
    let started = Instant::now();
    let warm = via_router.call_line(&line).map_err(|e| e.to_string())?;
    let router_hit_ns = started.elapsed().as_nanos().max(1);
    if cold.get("status").and_then(Json::as_str) != Some("ok")
        || warm.get("cached").and_then(Json::as_bool) != Some(true)
        || warm.get("via").and_then(Json::as_str) != Some("primary")
    {
        return Err(format!(
            "router phase: warm repeat was not a primary-routed cache hit: {}",
            warm.render()
        ));
    }
    drop(via_router);
    let mut direct = Client::connect(node.local_addr()).map_err(|e| e.to_string())?;
    // Untimed warm-up: the via-router hit rode a connection the cold
    // call had already warmed (accept, connection thread, first read);
    // give the direct path the same warm transport before timing.
    direct.call_line(&line).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let warm = direct.call_line(&line).map_err(|e| e.to_string())?;
    let direct_hit_ns = started.elapsed().as_nanos().max(1);
    if warm.get("cached").and_then(Json::as_bool) != Some(true) {
        return Err("router phase: direct repeat was not a cache hit".into());
    }
    drop(direct);
    router.shutdown();
    node.shutdown();
    let router_overhead_ns = router_hit_ns as f64 - direct_hit_ns as f64;

    // Phase 4: traced run on a fresh engine in full-simulation mode,
    // so the LUT pass actually solves device equations and the capture
    // holds spice and cell spans alongside coopt and serve spans (the
    // paper model is analytic and would skip those layers entirely).
    sram_probe::trace::clear();
    let dropped_before = sram_probe::trace::dropped();
    let traced_engine = Engine::new(
        CoOptimizationFramework::simulated_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    );
    let traced_request = Request::from_line(&workload_line(true)).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let traced = traced_engine.handle(&traced_request);
    let traced_wall_ns = started.elapsed().as_nanos().max(1);
    if traced.get("status").and_then(Json::as_str) != Some("ok") || traced.get("trace").is_none() {
        return Err("trace phase: traced response missing its span tree".into());
    }
    let events = {
        let _force = sram_probe::trace::force();
        sram_probe::trace::capture()
    };
    let trace_spans = events
        .iter()
        .filter(|e| e.phase != sram_probe::trace::Phase::End)
        .count();
    let trace_dropped = sram_probe::trace::dropped() - dropped_before;
    let chrome = sram_probe::trace::chrome_trace_json(&events);
    let chrome_bytes = chrome.len();
    let chrome_valid = chrome_export_is_well_formed(&chrome);
    if !chrome_valid {
        return Err("trace phase: Chrome export failed validation".into());
    }
    let flame = sram_probe::trace::flame_summary(&events, 16);
    let layers_ok = ["spice.", "cell.", "coopt.", "serve."]
        .iter()
        .all(|layer| flame.contains(layer));
    if !layers_ok {
        return Err(format!(
            "trace phase: flame summary missing a layer:\n{flame}"
        ));
    }

    // Phase 5: disabled-path microbenchmark.
    sram_probe::trace::set_tracing(false);
    let iters: u64 = if smoke { 200_000 } else { 2_000_000 };
    let started = Instant::now();
    for _ in 0..iters {
        let span = sram_probe::trace_span!("bench.trajectory_calibration");
        std::hint::black_box(&span);
    }
    let disabled_ns_per_call = started.elapsed().as_nanos() as f64 / iters as f64;
    let disabled_overhead_ratio = disabled_ns_per_call * trace_spans as f64 / traced_wall_ns as f64;
    if disabled_overhead_ratio >= MAX_DISABLED_OVERHEAD {
        return Err(format!(
            "disabled tracing overhead {disabled_overhead_ratio:.4} exceeds budget {MAX_DISABLED_OVERHEAD}"
        ));
    }

    // Phase 6: stitching microbenchmark. A winner and a cancelled
    // hedge loser both carry the phase-4 span tree (stamped with the
    // adoption proof the node-side serve path adds on the wire), so
    // each iteration assembles and validates a realistic two-node
    // timeline.
    let stitch_subtree = {
        let mut subtree = traced
            .get("trace")
            .cloned()
            .ok_or("stitch phase: traced response lost its span tree")?;
        if let Json::Obj(pairs) = &mut subtree {
            pairs.push(("parent_span".into(), Json::Num(7.0)));
        }
        subtree
    };
    let ctx = sram_probe::trace::TraceCtx {
        trace_id: sram_probe::trace::trace_id(1),
        parent_span: 7,
        sampled: true,
    };
    let total_ns = traced_wall_ns as u64;
    let pieces = [
        sram_cluster::stitch::AttemptPiece {
            node: "127.0.0.1:1".into(),
            via: "hedge",
            hedge_loser: false,
            send_ns: 1_000,
            rtt_ns: total_ns / 2,
            tree: Some(stitch_subtree.clone()),
            error: None,
        },
        sram_cluster::stitch::AttemptPiece {
            node: "127.0.0.1:2".into(),
            via: "primary",
            hedge_loser: true,
            send_ns: 0,
            rtt_ns: total_ns,
            tree: Some(stitch_subtree),
            error: None,
        },
    ];
    let iters: u64 = if smoke { 200 } else { 2_000 };
    let mut stitch_spans = 0u64;
    let started = Instant::now();
    for _ in 0..iters {
        let stitched = sram_cluster::stitch::stitch(&ctx, total_ns, &pieces);
        stitch_spans =
            sram_cluster::stitch::validate(&stitched).map_err(|e| format!("stitch phase: {e}"))?;
        std::hint::black_box(&stitched);
    }
    let stitch_ns_per_call = started.elapsed().as_nanos() as f64 / iters as f64;
    let stitch_overhead_ratio = stitch_ns_per_call / traced_wall_ns as f64;
    if stitch_overhead_ratio >= MAX_STITCH_OVERHEAD {
        return Err(format!(
            "span stitching overhead {stitch_overhead_ratio:.4} exceeds budget {MAX_STITCH_OVERHEAD}"
        ));
    }

    Ok(Trajectory {
        smoke,
        threads,
        characterize_wall_s,
        optimize_wall_s,
        examined,
        points_per_s,
        serve_cold_ns,
        cache_hit_ns,
        cache_speedup: serve_cold_ns as f64 / cache_hit_ns as f64,
        stats_ok,
        router_cold_ns,
        router_hit_ns,
        direct_hit_ns,
        router_overhead_ns,
        trace_spans,
        trace_dropped,
        chrome_bytes,
        chrome_valid,
        layers_ok,
        traced_wall_ns,
        disabled_ns_per_call,
        disabled_overhead_ratio,
        stitch_spans,
        stitch_ns_per_call,
        stitch_overhead_ratio,
    })
}

/// Renders one timestamped history entry (the per-run payload inside
/// the [`SCHEMA_VERSION`] envelope).
#[must_use]
pub fn to_json(t: &Trajectory, unix_ms: u64) -> String {
    let num = |v: f64| Json::Num(v);
    Json::Obj(vec![
        ("unix_ms".into(), num(unix_ms as f64)),
        ("smoke".into(), Json::Bool(t.smoke)),
        ("threads".into(), num(t.threads as f64)),
        (
            "search".into(),
            Json::Obj(vec![
                ("characterize_wall_s".into(), num(t.characterize_wall_s)),
                ("optimize_wall_s".into(), num(t.optimize_wall_s)),
                ("examined".into(), num(t.examined as f64)),
                ("points_per_s".into(), num(t.points_per_s)),
            ]),
        ),
        (
            "serve".into(),
            Json::Obj(vec![
                ("cold_ns".into(), num(t.serve_cold_ns as f64)),
                ("cache_hit_ns".into(), num(t.cache_hit_ns as f64)),
                ("cache_speedup".into(), num(t.cache_speedup)),
                ("stats_ok".into(), Json::Bool(t.stats_ok)),
            ]),
        ),
        (
            "router".into(),
            Json::Obj(vec![
                ("cold_ns".into(), num(t.router_cold_ns as f64)),
                ("via_hit_ns".into(), num(t.router_hit_ns as f64)),
                ("direct_hit_ns".into(), num(t.direct_hit_ns as f64)),
                ("overhead_ns".into(), num(t.router_overhead_ns)),
            ]),
        ),
        (
            "trace".into(),
            Json::Obj(vec![
                ("spans".into(), num(t.trace_spans as f64)),
                ("dropped".into(), num(t.trace_dropped as f64)),
                ("chrome_bytes".into(), num(t.chrome_bytes as f64)),
                ("chrome_valid".into(), Json::Bool(t.chrome_valid)),
                ("layers_ok".into(), Json::Bool(t.layers_ok)),
                ("traced_wall_ns".into(), num(t.traced_wall_ns as f64)),
                ("disabled_ns_per_call".into(), num(t.disabled_ns_per_call)),
                (
                    "disabled_overhead_ratio".into(),
                    num(t.disabled_overhead_ratio),
                ),
            ]),
        ),
        (
            "trace_stitch".into(),
            Json::Obj(vec![
                ("spans".into(), num(t.stitch_spans as f64)),
                ("ns_per_call".into(), num(t.stitch_ns_per_call)),
                ("overhead_ratio".into(), num(t.stitch_overhead_ratio)),
            ]),
        ),
    ])
    .render()
}

/// Appends one rendered entry to an existing history file's text,
/// returning the new file content. A missing, corrupt, or
/// wrong-schema history starts fresh; the history is bounded to the
/// newest [`MAX_HISTORY`] entries.
#[must_use]
pub fn append_history(existing: Option<&str>, entry: Json) -> String {
    let mut entries: Vec<Json> = existing
        .and_then(|text| Json::parse(text).ok())
        .filter(|j| j.get("schema_version").and_then(Json::as_f64) == Some(SCHEMA_VERSION))
        .and_then(|j| {
            j.get("entries")
                .and_then(Json::as_array)
                .map(|a| a.to_vec())
        })
        .unwrap_or_default();
    entries.push(entry);
    if entries.len() > MAX_HISTORY {
        let excess = entries.len() - MAX_HISTORY;
        entries.drain(..excess);
    }
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION)),
        ("entries".into(), Json::Arr(entries)),
    ])
    .render()
}

/// Runs the bench, appends a timestamped entry to [`OUTPUT_FILE`]
/// (bounded history — the trajectory accumulates across runs instead
/// of overwriting), and formats the report.
///
/// # Errors
///
/// Propagates [`bench`] failures and the file write.
pub fn run(threads: usize) -> Result<String, String> {
    let t = bench(threads)?;
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let entry = Json::parse(&to_json(&t, unix_ms)).map_err(|e| format!("entry render: {e}"))?;
    let existing = std::fs::read_to_string(OUTPUT_FILE).ok();
    let json = append_history(existing.as_deref(), entry);
    let entry_count = Json::parse(&json)
        .ok()
        .and_then(|j| j.get("entries").and_then(Json::as_array).map(<[Json]>::len))
        .unwrap_or(0);
    std::fs::write(OUTPUT_FILE, &json)
        .map_err(|e| format!("failed to write {OUTPUT_FILE}: {e}"))?;

    let mut out = String::from("Performance trajectory (search -> serve -> router -> trace)\n\n");
    out.push_str(&format!(
        "  search:   characterize {:.2} s, optimize {:.2} s, {} points ({:.0} points/s)\n",
        t.characterize_wall_s, t.optimize_wall_s, t.examined, t.points_per_s
    ));
    out.push_str(&format!(
        "  serve:    cold {:.2} ms -> cache hit {:.1} us ({:.0}x); TCP stats snapshot: {}\n",
        t.serve_cold_ns as f64 / 1e6,
        t.cache_hit_ns as f64 / 1e3,
        t.cache_speedup,
        if t.stats_ok { "ok" } else { "EMPTY" }
    ));
    out.push_str(&format!(
        "  router:   cold {:.2} ms -> via-router hit {:.1} us vs direct {:.1} us ({:+.1} us overhead)\n",
        t.router_cold_ns as f64 / 1e6,
        t.router_hit_ns as f64 / 1e3,
        t.direct_hit_ns as f64 / 1e3,
        t.router_overhead_ns / 1e3
    ));
    out.push_str(&format!(
        "  trace:    {} spans ({} dropped), Chrome export {} bytes ({}), layers {}\n",
        t.trace_spans,
        t.trace_dropped,
        t.chrome_bytes,
        if t.chrome_valid {
            "well-formed"
        } else {
            "INVALID"
        },
        if t.layers_ok {
            "spice+cell+coopt+serve"
        } else {
            "MISSING"
        }
    ));
    out.push_str(&format!(
        "  overhead: disabled trace_span! {:.2} ns/call -> {:.5} of the traced wall (budget {})\n",
        t.disabled_ns_per_call, t.disabled_overhead_ratio, MAX_DISABLED_OVERHEAD
    ));
    out.push_str(&format!(
        "  stitch:   {}-span cross-node timeline in {:.1} us/call -> {:.6} of the traced wall (budget {})\n",
        t.stitch_spans,
        t.stitch_ns_per_call / 1e3,
        t.stitch_overhead_ratio,
        MAX_STITCH_OVERHEAD
    ));
    out.push_str(&format!(
        "\n  appended: {OUTPUT_FILE} (entry {entry_count} of at most {MAX_HISTORY})\n"
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_bench_meets_every_invariant() {
        let t = bench(2).expect("trajectory bench runs");
        assert!(t.stats_ok);
        assert!(t.router_cold_ns > 0);
        assert!(t.router_hit_ns > 0 && t.direct_hit_ns > 0);
        assert!(t.chrome_valid);
        assert!(t.layers_ok);
        assert!(t.trace_spans > 0);
        assert!(t.characterize_wall_s > 0.0);
        assert!(t.points_per_s > 0.0);
        assert!(t.disabled_overhead_ratio < MAX_DISABLED_OVERHEAD);
        // Root + two attempts + a subtree under each, at minimum.
        assert!(t.stitch_spans >= 5, "stitch_spans = {}", t.stitch_spans);
        assert!(t.stitch_ns_per_call > 0.0);
        assert!(t.stitch_overhead_ratio < MAX_STITCH_OVERHEAD);
    }

    #[test]
    fn json_has_the_required_keys() {
        let t = Trajectory {
            smoke: true,
            threads: 2,
            characterize_wall_s: 1.0,
            optimize_wall_s: 2.0,
            examined: 100,
            points_per_s: 50.0,
            serve_cold_ns: 1_000_000,
            cache_hit_ns: 1_000,
            cache_speedup: 1000.0,
            stats_ok: true,
            router_cold_ns: 2_000_000,
            router_hit_ns: 2_000,
            direct_hit_ns: 1_200,
            router_overhead_ns: 800.0,
            trace_spans: 42,
            trace_dropped: 0,
            chrome_bytes: 1234,
            chrome_valid: true,
            layers_ok: true,
            traced_wall_ns: 250_000_000,
            disabled_ns_per_call: 1.5,
            disabled_overhead_ratio: 0.0001,
            stitch_spans: 90,
            stitch_ns_per_call: 12_000.0,
            stitch_overhead_ratio: 0.00005,
        };
        let json = Json::parse(&to_json(&t, 1_754_000_000_000)).expect("renders valid JSON");
        for key in [
            "unix_ms",
            "smoke",
            "threads",
            "search",
            "serve",
            "router",
            "trace",
            "trace_stitch",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(
            json.get("router")
                .and_then(|r| r.get("overhead_ns"))
                .and_then(Json::as_f64),
            Some(800.0)
        );
        assert!(json
            .get("trace")
            .and_then(|t| t.get("disabled_overhead_ratio"))
            .is_some());
        assert_eq!(
            json.get("trace_stitch")
                .and_then(|s| s.get("overhead_ratio"))
                .and_then(Json::as_f64),
            Some(0.00005)
        );
        assert_eq!(
            json.get("serve")
                .and_then(|s| s.get("stats_ok"))
                .and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn history_appends_bounds_and_survives_corrupt_files() {
        let entry = |n: f64| Json::Obj(vec![("unix_ms".into(), Json::Num(n))]);
        // Fresh start.
        let one = append_history(None, entry(1.0));
        let parsed = Json::parse(&one).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            parsed
                .get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        // Appending keeps earlier entries, newest last.
        let two = append_history(Some(&one), entry(2.0));
        let entries = Json::parse(&two).unwrap();
        let entries = entries
            .get("entries")
            .and_then(Json::as_array)
            .unwrap()
            .to_vec();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[1].get("unix_ms").and_then(Json::as_f64), Some(2.0));
        // A v1 overwrite-era file (no envelope) restarts the history.
        let reset = append_history(Some(r#"{"schema_version":1,"smoke":true}"#), entry(3.0));
        let parsed = Json::parse(&reset).unwrap();
        assert_eq!(
            parsed
                .get("entries")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(1)
        );
        // Corrupt text also restarts rather than failing.
        let reset = append_history(Some("{truncated"), entry(4.0));
        assert!(Json::parse(&reset).is_ok());
        // The history is bounded: old entries age out, newest kept.
        let mut text = append_history(None, entry(0.0));
        for n in 1..=(MAX_HISTORY + 5) {
            text = append_history(Some(&text), entry(n as f64));
        }
        let parsed = Json::parse(&text).unwrap();
        let entries = parsed.get("entries").and_then(Json::as_array).unwrap();
        assert_eq!(entries.len(), MAX_HISTORY);
        assert_eq!(
            entries
                .last()
                .and_then(|e| e.get("unix_ms"))
                .and_then(Json::as_f64),
            Some((MAX_HISTORY + 5) as f64)
        );
    }

    #[test]
    fn chrome_validator_rejects_misnesting() {
        assert!(!chrome_export_is_well_formed("not json"));
        assert!(!chrome_export_is_well_formed(r#"{"traceEvents":[]}"#));
        // Unmatched end.
        assert!(!chrome_export_is_well_formed(
            r#"{"traceEvents":[{"ph":"E","tid":1,"name":"a","pid":1,"ts":0}]}"#
        ));
        // Misnested pair.
        assert!(!chrome_export_is_well_formed(
            r#"{"traceEvents":[
                {"ph":"B","tid":1,"name":"a","pid":1,"ts":0},
                {"ph":"B","tid":1,"name":"b","pid":1,"ts":1},
                {"ph":"E","tid":1,"name":"a","pid":1,"ts":2},
                {"ph":"E","tid":1,"name":"b","pid":1,"ts":3}
            ]}"#
        ));
        // Proper nesting passes; metadata lane labels ("M") are fine.
        assert!(chrome_export_is_well_formed(
            r#"{"traceEvents":[
                {"ph":"M","tid":0,"name":"process_name","pid":1,"args":{"name":"sram"}},
                {"ph":"B","tid":1,"name":"a","pid":1,"ts":0},
                {"ph":"B","tid":1,"name":"b","pid":1,"ts":1},
                {"ph":"E","tid":1,"name":"b","pid":1,"ts":2},
                {"ph":"E","tid":1,"name":"a","pid":1,"ts":3},
                {"ph":"X","tid":1001,"name":"c","pid":1,"ts":0,"dur":3}
            ]}"#
        ));
    }
}
