//! Extension experiments beyond the paper: banking, drowsy standby,
//! statistically derated optimization, and temperature scaling.

use crate::format_series;
use sram_array::{ArrayParams, Capacity, Periphery};
use sram_cell::{
    AssistVoltages, CellCharacterization, CellCharacterizer, MonteCarloConfig, YieldAnalyzer,
};
use sram_coopt::{
    evaluate_bank_count, optimize_standby, CooptError, DesignSpace, EnergyDelayProduct,
    ExhaustiveSearch, YieldConstraint,
};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::Voltage;

/// Banking sweep: EDP of a 16 KB HVT macro vs. bank count.
///
/// # Errors
///
/// Propagates search failures.
pub fn banking_sweep() -> Result<String, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let constraint = YieldConstraint::paper_delta(lib.nominal_vdd());
    let capacity = Capacity::from_bytes(16 * 1024);

    let mut rows = Vec::new();
    for bank_bits in 0..=3 {
        let d = evaluate_bank_count(
            capacity, bank_bits, &cell, &periphery, &params, &space, constraint, 64,
        )?;
        rows.push(vec![
            format!("{}", d.banks()),
            d.bank.capacity.to_string(),
            format!(
                "{}x{}",
                d.bank.organization.rows(),
                d.bank.organization.cols()
            ),
            format!("{:.2}", d.delay.picoseconds()),
            format!("{:.2}", d.energy.femtojoules()),
            format!("{:.2}", d.edp().joule_seconds() * 1e27),
        ]);
    }
    Ok(format!(
        "Banking extension — 16 KB 6T-HVT macro vs bank count:\n\n{}",
        format_series(
            &[
                "banks",
                "per-bank",
                "bank org",
                "delay[ps]",
                "energy[fJ]",
                "EDP[1e-27 J*s]"
            ],
            &rows
        )
    ))
}

/// Drowsy-standby report for both flavors.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn standby_report() -> Result<String, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let mut rows = Vec::new();
    for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
        let chr = CellCharacterizer::new(&lib, flavor);
        let policy = optimize_standby(&chr, 0.30)?;
        rows.push(vec![
            flavor.to_string(),
            format!("{:.0}", policy.vdd_hold.millivolts()),
            format!("{:.1}", policy.hold_snm.millivolts()),
            format!("{:.4}", policy.leakage.nanowatts()),
            format!("{:.4}", policy.nominal_leakage.nanowatts()),
            format!("{:.1}%", policy.leakage_saving() * 100.0),
        ]);
    }
    Ok(format!(
        "Drowsy-standby extension (retention margin >= 0.30*Vdd, simulated):\n\n{}",
        format_series(
            &[
                "cell",
                "Vdd_hold[mV]",
                "HSNM[mV]",
                "leak[nW]",
                "nominal leak[nW]",
                "saving"
            ],
            &rows
        )
    ))
}

/// Statistically derated optimization: measure per-margin sigmas by
/// Monte Carlo at the HVT-M2 bias, derate the look-up tables by `k`
/// sigmas, and re-run the search — the table-driven version of the
/// paper's `μ − kσ` constraint.
///
/// # Errors
///
/// Propagates simulation and search failures.
pub fn derated_optimization(samples: usize) -> Result<String, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let capacity = Capacity::from_bytes(4096);

    // One MC run fixes the sigmas.
    let bias = AssistVoltages::nominal(vdd)
        .with_vddc(Voltage::from_millivolts(550.0))
        .with_vssc(Voltage::from_millivolts(-240.0))
        .with_vwl(Voltage::from_millivolts(540.0));
    let analysis = YieldAnalyzer::new(
        CellCharacterizer::new(&lib, VtFlavor::Hvt),
        MonteCarloConfig {
            samples,
            seed: 0xde8a7e,
            vtc_points: 25,
        },
    )
    .run(&bias)
    .map_err(CooptError::Cell)?;

    // Statistical robustness costs assist voltage: the rails must climb
    // until the *derated* margins clear delta again. In the paper-model
    // margins, RSNM gains 0.55 V/V of V_DDC boost and WM gains 0.9 V/V
    // of V_WL overdrive, so the k-sigma-robust rails are:
    //   V_DDC(k) = 550 mV + k*sigma_RSNM/0.55
    //   V_WL(k)  = 540 mV + k*sigma_WM/0.9
    let constraint = YieldConstraint::paper_delta(vdd);
    let mut rows = Vec::new();
    let mut edp0 = None;
    for k in [0.0, 1.0, 2.0, 3.0] {
        // +5 mV slack keeps the re-centered margins strictly above delta
        // (the exact-compensation point is a knife edge).
        let slack = Voltage::from_millivolts(if k > 0.0 { 5.0 } else { 0.0 });
        let vddc = Voltage::from_millivolts(550.0) + analysis.rsnm.sigma * (k / 0.55) + slack;
        let vwl = Voltage::from_millivolts(540.0) + analysis.wm.sigma * (k / 0.9) + slack;
        let cell = CellCharacterization::paper_with_rails(VtFlavor::Hvt, vdd, vddc, vwl).derated(
            k,
            analysis.hsnm.sigma,
            analysis.rsnm.sigma,
            analysis.wm.sigma,
        );
        let search = ExhaustiveSearch::new(&cell, &periphery, &params, &space, constraint, 64);
        match search.run(capacity, &EnergyDelayProduct) {
            Ok(outcome) => {
                let edp = outcome.score * 1e24;
                if k == 0.0 {
                    edp0 = Some(edp);
                }
                let overhead = edp0.map_or(0.0, |e0| (edp / e0 - 1.0) * 100.0);
                rows.push(vec![
                    format!("{k:.0}"),
                    format!("{:.0}", vddc.millivolts()),
                    format!("{:.0}", vwl.millivolts()),
                    format!("{:.0}", outcome.best.vssc.millivolts()),
                    format!("{edp:.3}"),
                    format!("{overhead:+.1}%"),
                ]);
            }
            Err(CooptError::Infeasible { .. }) => rows.push(vec![
                format!("{k:.0}"),
                format!("{:.0}", vddc.millivolts()),
                format!("{:.0}", vwl.millivolts()),
                "-".into(),
                "infeasible".into(),
                "-".into(),
            ]),
            Err(e) => return Err(e),
        }
    }
    Ok(format!(
        "Cost-of-robustness extension (sigmas from {} MC samples: HSNM {:.1} / RSNM {:.1} / WM {:.1} mV;\nrails climb until k-sigma-derated margins clear delta again). Note: under Table 2's\nequations the boosted V_DDC also raises I_read, so the EDP 'overhead' can be\nslightly negative (cf. ablation A1) until rail energy dominates:\n\n{}",
        samples,
        analysis.hsnm.sigma.millivolts(),
        analysis.rsnm.sigma.millivolts(),
        analysis.wm.sigma.millivolts(),
        format_series(
            &["k", "V_DDC[mV]", "V_WL[mV]", "V_SSC[mV]", "EDP[1e-24 J*s]", "overhead"],
            &rows
        )
    ))
}

/// Temperature extension: simulate cell leakage and hold margin from
/// 25 °C to 125 °C, then re-run the 16 KB EDP comparison with the
/// measured leakage scaling transplanted into the paper-mode snapshots.
///
/// # Errors
///
/// Propagates simulation and search failures.
pub fn temperature_report() -> Result<String, CooptError> {
    let base = DeviceLibrary::sevennm();
    let vdd = base.nominal_vdd();
    let nominal = AssistVoltages::nominal(vdd);

    let mut rows = Vec::new();
    let mut leak_scale = Vec::new(); // (kelvin, lvt_ratio, hvt_ratio)
    let mut base_leak = [0.0f64; 2];
    for (ti, kelvin) in [300.0, 358.0, 398.0].iter().enumerate() {
        let lib = base.at_temperature(*kelvin);
        let mut leaks = [0.0f64; 2];
        let mut hsnms = [0.0f64; 2];
        for (fi, flavor) in [VtFlavor::Lvt, VtFlavor::Hvt].iter().enumerate() {
            let chr = CellCharacterizer::new(&lib, *flavor).with_vtc_points(31);
            leaks[fi] = chr
                .leakage_power(&nominal)
                .map_err(CooptError::Cell)?
                .nanowatts();
            hsnms[fi] = chr
                .hold_snm(&nominal)
                .map_err(CooptError::Cell)?
                .millivolts();
        }
        if ti == 0 {
            base_leak = leaks;
        }
        leak_scale.push((*kelvin, leaks[0] / base_leak[0], leaks[1] / base_leak[1]));
        rows.push(vec![
            format!("{:.0}", kelvin - 273.0),
            format!("{:.3}", leaks[0]),
            format!("{:.3}", leaks[1]),
            format!("{:.1}", hsnms[0]),
            format!("{:.1}", hsnms[1]),
        ]);
    }
    let mut out = format!(
        "Temperature extension (simulated cell, nominal bias):\n\n{}",
        format_series(
            &[
                "T[C]",
                "leak LVT[nW]",
                "leak HVT[nW]",
                "HSNM LVT[mV]",
                "HSNM HVT[mV]"
            ],
            &rows
        )
    );

    // EDP impact: transplant the measured leakage scaling into the
    // paper-mode snapshots and re-run the 16 KB comparison.
    let periphery = Periphery::new(&base);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let constraint = YieldConstraint::paper_delta(vdd);
    let capacity = Capacity::from_bytes(16 * 1024);
    let mut rows = Vec::new();
    for &(kelvin, lvt_ratio, hvt_ratio) in &leak_scale {
        let lvt = CellCharacterization::paper_lvt(vdd);
        let hvt = CellCharacterization::paper_hvt(vdd);
        let lvt = lvt.clone().with_leakage(lvt.leakage() * lvt_ratio);
        let hvt = hvt.clone().with_leakage(hvt.leakage() * hvt_ratio);
        let run = |cell: &CellCharacterization| {
            ExhaustiveSearch::new(cell, &periphery, &params, &space, constraint, 64)
                .run(capacity, &EnergyDelayProduct)
                .map(|o| o.score)
        };
        let edp_lvt = run(&lvt)?;
        let edp_hvt = run(&hvt)?;
        rows.push(vec![
            format!("{:.0}", kelvin - 273.0),
            format!("{:.2}", edp_lvt * 1e24),
            format!("{:.2}", edp_hvt * 1e24),
            format!("{:.1}%", (1.0 - edp_hvt / edp_lvt) * 100.0),
        ]);
    }
    out.push_str(&format!(
        "\n16 KB EDP vs temperature (paper-mode search, measured leakage scaling):\n\n{}",
        format_series(
            &[
                "T[C]",
                "EDP LVT-M2[1e-24]",
                "EDP HVT-M2[1e-24]",
                "HVT saving"
            ],
            &rows
        )
    ));
    Ok(out)
}

/// Fully simulated rail ablation (the simulation-backed version of
/// ablation A1): characterize the HVT cell at several `V_DDC` levels by
/// circuit simulation and search each — no paper constants anywhere.
///
/// # Errors
///
/// Propagates simulation and search failures.
pub fn simulated_rail_ablation() -> Result<String, CooptError> {
    use sram_cell::CharacterizationGrid;
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::coarse();
    let constraint = YieldConstraint::paper_delta(vdd);
    let capacity = Capacity::from_bytes(4096);

    let mut rows = Vec::new();
    for vddc_mv in [560.0, 590.0, 620.0, 650.0] {
        let vddc = Voltage::from_millivolts(vddc_mv);
        let vwl = Voltage::from_millivolts(530.0); // simulated WM minimum
        let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(25);
        let grid = CharacterizationGrid {
            vddc,
            vwl,
            vssc_values: (0..=4)
                .map(|k| Voltage::from_millivolts(-60.0 * f64::from(k)))
                .collect(),
            vwl_values: vec![Voltage::from_millivolts(450.0), vwl],
        };
        let cell = CellCharacterization::characterize(&chr, &grid).map_err(CooptError::Cell)?;
        let search = ExhaustiveSearch::new(&cell, &periphery, &params, &space, constraint, 64);
        match search.run(capacity, &EnergyDelayProduct) {
            Ok(outcome) => rows.push(vec![
                format!("{vddc_mv:.0}"),
                format!("{:.0}", outcome.best.vssc.millivolts()),
                format!("{:.2}", outcome.metrics.delay.picoseconds()),
                format!("{:.2}", outcome.metrics.energy.femtojoules()),
                format!("{:.3}", outcome.score * 1e24),
            ]),
            Err(CooptError::Infeasible { .. }) => rows.push(vec![
                format!("{vddc_mv:.0}"),
                "-".into(),
                "infeasible".into(),
                "-".into(),
                "-".into(),
            ]),
            Err(e) => return Err(e),
        }
    }
    Ok(format!(
        "Simulated rail ablation (4 KB HVT, everything measured by the circuit simulator):\n\n{}",
        format_series(
            &[
                "V_DDC[mV]",
                "V_SSC[mV]",
                "delay[ps]",
                "energy[fJ]",
                "EDP[1e-24 J*s]"
            ],
            &rows
        )
    ))
}

/// Runs all extension experiments.
///
/// # Errors
///
/// Propagates the first failure.
pub fn run() -> Result<String, CooptError> {
    let mut out = banking_sweep()?;
    out.push('\n');
    out.push_str(&standby_report()?);
    out.push('\n');
    out.push_str(&derated_optimization(24)?);
    out.push('\n');
    out.push_str(&temperature_report()?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banking_sweep_produces_four_rows() {
        let text = banking_sweep().unwrap();
        assert!(text.contains("banks"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn standby_reports_both_flavors() {
        let text = standby_report().unwrap();
        assert!(text.contains("LVT"));
        assert!(text.contains("HVT"));
        assert!(text.contains('%'));
    }

    #[test]
    fn hot_leakage_widens_the_hvt_advantage() {
        let text = temperature_report().unwrap();
        assert!(text.contains("125"));
        assert!(text.contains("HVT saving"));
    }

    #[test]
    fn derated_optimization_tightens_with_k() {
        let text = derated_optimization(6).unwrap();
        assert!(text.contains("k"));
        // k = 0 row exists and is feasible.
        assert!(text.lines().any(|l| l.trim_start().starts_with('0')));
    }
}
