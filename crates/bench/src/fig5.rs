//! Figure 5: write-assist technique sweeps on the 6T-HVT cell.
//!
//! * (a) wordline overdrive (`V_WL`) — WM and cell write delay improve;
//!   yield crossing near `V_WL = 540 mV`;
//! * (b) negative bitline (`V_BL`) — WM improves, write delay improves
//!   faster; yield crossing near `V_BL = −100 mV`.

use crate::format_series;
use sram_cell::{AssistVoltages, CellCharacterizer, CellError};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::{Time, Voltage};

/// One sample of a write-assist sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteAssistPoint {
    /// Swept assist voltage (`V_WL` or `V_BL`).
    pub level: Voltage,
    /// Write margin under this bias.
    pub wm: Voltage,
    /// Cell-level write delay under this bias (`None` when the write
    /// fails inside the transient window).
    pub write_delay: Option<Time>,
}

/// Fig. 5(a): sweep `V_WL` from 450 mV to 650 mV.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn wl_overdrive_sweep(library: &DeviceLibrary) -> Result<Vec<WriteAssistPoint>, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt);
    let vdd = library.nominal_vdd();
    let mut out = Vec::new();
    for mv in (450..=650).step_by(25) {
        let vwl = Voltage::from_millivolts(f64::from(mv));
        let bias = AssistVoltages::nominal(vdd).with_vwl(vwl);
        out.push(WriteAssistPoint {
            level: vwl,
            wm: chr.write_margin(&bias)?,
            write_delay: delay_or_none(chr.write_delay(&bias))?,
        });
    }
    Ok(out)
}

/// Fig. 5(b): sweep `V_BL` from 0 to −200 mV (WL at nominal `Vdd`).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn negative_bitline_sweep(library: &DeviceLibrary) -> Result<Vec<WriteAssistPoint>, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt);
    let vdd = library.nominal_vdd();
    let mut out = Vec::new();
    for k in 0..=8 {
        let vbl = Voltage::from_millivolts(-25.0 * f64::from(k));
        let bias = AssistVoltages::nominal(vdd).with_vbl(vbl);
        out.push(WriteAssistPoint {
            level: vbl,
            wm: chr.write_margin(&bias)?,
            write_delay: delay_or_none(chr.write_delay(&bias))?,
        });
    }
    Ok(out)
}

fn delay_or_none(result: Result<Time, CellError>) -> Result<Option<Time>, CellError> {
    match result {
        Ok(t) => Ok(Some(t)),
        Err(CellError::MeasurementFailed { .. }) => Ok(None),
        Err(e) => Err(e),
    }
}

fn format_points(
    title: &str,
    level_name: &str,
    pts: &[WriteAssistPoint],
    delta: Voltage,
) -> String {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.level.millivolts()),
                format!("{:.1}", p.wm.millivolts()),
                p.write_delay
                    .map_or_else(|| "fail".to_owned(), |t| format!("{:.2}", t.picoseconds())),
                if p.wm >= delta { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    format!(
        "{title}\n\n{}",
        format_series(
            &[level_name, "WM[mV]", "write delay[ps]", "meets delta"],
            &rows
        )
    )
}

/// Runs both panels and formats them.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run() -> Result<String, CellError> {
    let lib = DeviceLibrary::sevennm();
    let delta = lib.nominal_vdd() * 0.35;
    let mut out = format_points(
        "Fig. 5(a) — wordline overdrive (V_WL sweep)",
        "V_WL[mV]",
        &wl_overdrive_sweep(&lib)?,
        delta,
    );
    out.push('\n');
    out.push_str(&format_points(
        "Fig. 5(b) — negative bitline (V_BL sweep)",
        "V_BL[mV]",
        &negative_bitline_sweep(&lib)?,
        delta,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wlod_improves_both_wm_and_delay() {
        let lib = DeviceLibrary::sevennm();
        let pts = wl_overdrive_sweep(&lib).unwrap();
        assert!(pts.last().unwrap().wm > pts[0].wm);
        let d_first = pts[0].write_delay.expect("nominal write should succeed");
        let d_last = pts.last().unwrap().write_delay.expect("overdriven write");
        assert!(d_last < d_first);
        // The yield crossing exists inside the swept range.
        let delta = lib.nominal_vdd() * 0.35;
        assert!(pts.iter().any(|p| p.wm >= delta));
        assert!(pts.iter().any(|p| p.wm < delta));
    }

    #[test]
    fn negative_bl_improves_wm() {
        let lib = DeviceLibrary::sevennm();
        let pts = negative_bitline_sweep(&lib).unwrap();
        assert!(pts.last().unwrap().wm > pts[0].wm);
    }
}
