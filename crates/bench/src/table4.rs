//! Table 4: optimal design parameters for every capacity/configuration,
//! plus a Monte Carlo spot-check of the headline winner against the
//! paper's accurate statistical yield constraint (Section 4).

use sram_coopt::{CoOptimizationFramework, CooptError, Method, OptimalDesign};
use sram_device::VtFlavor;

/// Samples in the statistical spot-check — enough to exercise the full
/// variation/SPICE stack without dominating the runtime.
const SPOT_CHECK_SAMPLES: usize = 12;

/// Runs the full Table 4 optimization (20 exhaustive searches) in
/// paper-model mode with `threads` workers.
///
/// # Errors
///
/// Propagates framework failures.
pub fn compute(threads: usize) -> Result<Vec<OptimalDesign>, CooptError> {
    CoOptimizationFramework::paper_mode()
        .with_threads(threads)
        .optimize_table4()
}

/// Formats Table 4 plus the per-design evaluated metrics.
///
/// # Errors
///
/// Propagates framework failures.
pub fn run(threads: usize) -> Result<String, CooptError> {
    let mut fw = CoOptimizationFramework::paper_mode().with_threads(threads);
    let designs = fw.optimize_table4()?;
    let mut out =
        String::from("Table 4 — SRAM array design parameters at the minimum-EDP point\n\n");
    out.push_str(&sram_coopt::format_table4(&designs));
    out.push_str("\nEvaluated metrics:\n");
    for d in &designs {
        out.push_str(&format!("  {d}\n"));
    }
    out.push_str("\nCSV:\n");
    out.push_str(&sram_coopt::csv_table(&designs));

    // Cross-check the headline winner (16 KB 6T-HVT-M2) against the
    // accurate constraint `min(μ − kσ) ≥ 0` by Monte Carlo.
    if let Some(headline) = designs.iter().find(|d| {
        d.capacity.bytes() == 16 * 1024 && d.flavor == VtFlavor::Hvt && d.method == Method::M2
    }) {
        let mc = fw.verify_statistical_yield(headline, SPOT_CHECK_SAMPLES)?;
        out.push_str(&format!(
            "\nStatistical spot-check ({} {}, {SPOT_CHECK_SAMPLES}-sample Monte Carlo):\n  \
             worst mu-3sigma margin = {:.1} mV (k = 3 constraint {})\n",
            headline.capacity,
            headline.label(),
            mc.worst_statistical_margin(3.0).millivolts(),
            if mc.passes(3.0) { "passes" } else { "fails" },
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram_coopt::Method;
    use sram_device::VtFlavor;

    #[test]
    fn table4_has_twenty_rows_with_paper_patterns() {
        let designs = compute(4).unwrap();
        assert_eq!(designs.len(), 20);

        // Pattern 1 (Table 4): M2 designs at >= 1 KB exploit deep
        // negative Gnd.
        for d in &designs {
            if d.method == Method::M2 && d.capacity.bytes() >= 1024 && d.capacity.bytes() <= 4096 {
                assert!(d.vssc.millivolts() <= -100.0, "{}: V_SSC = {}", d, d.vssc);
            }
            // Pattern 2: M1 never uses a negative rail.
            if d.method == Method::M1 {
                assert_eq!(d.vssc.millivolts(), 0.0);
            }
            // Pattern 3: N_wr stays small relative to N_pre ("smaller
            // N_wr values are used which ... allows N_pre to be larger").
            assert!(d.n_wr <= d.n_pre, "{d}");
        }

        // Pattern 4: HVT-M1 has the highest delay of the four configs at
        // every capacity (Fig. 7(a)).
        for bytes in [128usize, 256, 1024, 4096, 16384] {
            let of = |f: VtFlavor, m: Method| {
                designs
                    .iter()
                    .find(|d| d.capacity.bytes() == bytes && d.flavor == f && d.method == m)
                    .expect("row exists")
            };
            let hvt_m1 = of(VtFlavor::Hvt, Method::M1);
            for (f, m) in [
                (VtFlavor::Lvt, Method::M1),
                (VtFlavor::Lvt, Method::M2),
                (VtFlavor::Hvt, Method::M2),
            ] {
                assert!(
                    hvt_m1.delay() >= of(f, m).delay(),
                    "at {bytes} B: HVT-M1 not slowest"
                );
            }
        }
    }
}
