//! `trace-soak`: opt-in distributed-tracing experiment — a 3-node
//! in-process cluster behind the router, driven by concurrent clients
//! sending **traced** queries while a fixed fault plan injects a slow
//! characterization (which fires a hedge) and one node kill (which
//! forces a failover), hard-failing on any disconnected span forest,
//! a missing or unmarked cancelled-hedge branch, or merged-quantile
//! drift between the router's federated `cluster-metrics` plane and
//! an offline recompute from the per-node histograms.
//!
//! Three phases:
//!
//! 1. **soak** — four clients push `"trace": true` optimize queries
//!    through the [`Router`] over two waves. The plan's 60 ms slow
//!    characterization pushes one request past the hedge delay, so its
//!    primary finishes as a cancelled **hedge loser** whose span tree
//!    the router must still stitch (marked `hedge_loser: true`); the
//!    node kill makes in-flight and affinity-routed requests fail over
//!    down the ring. Every `ok` reply's stitched tree is validated on
//!    the spot: one `cluster.request` root, every subtree re-rooted
//!    under the propagated parent span ([`stitch::validate`]).
//! 2. **federation audit** — after traffic quiesces and a forced
//!    telemetry sample, the surviving nodes are polled **directly**
//!    for their raw `serve.request.latency_ns` histograms, which are
//!    merged offline ([`collector::parse_snapshot`] +
//!    [`QuantileSnapshot::merge`]); the router's `cluster-metrics`
//!    merged p50/p99 must agree within the LogLinear
//!    `MAX_QUANTILE_RELATIVE_ERROR` (1/32) bound, and `cluster-health`
//!    must report exactly the killed node unreachable.
//! 3. **audit** — counter deltas prove the distributed-trace pipeline
//!    ran end to end: contexts propagated, trees stitched, at least
//!    one loser branch kept, and **zero** disconnected forests; the
//!    richest stitched tree must also export as one Chrome trace with
//!    the router and nodes on separate pid lanes.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

use sram_cluster::{collector, stitch, Router, RouterConfig};
use sram_faults::{FaultPlan, FaultRule};
use sram_probe::telemetry::{QuantileSnapshot, MAX_QUANTILE_RELATIVE_ERROR};
use sram_serve::{Client, Json, Server};

/// Cluster size; the plan kills one of these mid-soak (no respawn —
/// the hole must show up in the federated plane, not vanish from it).
const NODES: usize = 3;
/// Concurrent soak clients per wave.
const CLIENTS: usize = 4;
/// Traced requests each client must see answered exactly once, per
/// wave.
const REQUESTS_PER_CLIENT: usize = 8;
/// Worker threads per node.
const NODE_WORKERS: usize = 2;
/// Job-queue depth per node.
const NODE_QUEUE: usize = 16;
/// Resend budget per request (busy rejections and the node kill
/// trigger resends; a request needing more is hung).
const MAX_ATTEMPTS: usize = 12;
/// Client-side reply timeout — the hang detector.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// Structured outcome (consumed by the unit tests; the report is
/// built from it).
#[derive(Debug, Clone)]
pub struct TraceSoak {
    /// Cluster size.
    pub nodes: usize,
    /// Traced requests issued across both waves.
    pub requests: usize,
    /// Requests answered `ok` exactly once (must equal `requests`).
    pub answered: usize,
    /// Replies whose stitched tree failed [`stitch::validate`] — a
    /// disconnected span forest (must be 0).
    pub forest_replies: usize,
    /// Replies carrying at least one `hedge_loser: true` branch (must
    /// be >= 1: the cancelled hedge twin stays on the timeline).
    pub loser_replies: usize,
    /// Spans across every validated stitched tree.
    pub spans: u64,
    /// `cluster.trace.propagated` delta (must be >= `answered`).
    pub propagated: u64,
    /// `cluster.trace.stitched` delta (must be >= `answered`).
    pub stitched: u64,
    /// `cluster.trace.stitched_spans` delta (must be >= `stitched`).
    pub stitched_spans: u64,
    /// `cluster.trace.losers` delta (must be >= 1).
    pub losers: u64,
    /// `cluster.trace.forests` delta (must be 0).
    pub forests: u64,
    /// `cluster.hedge.fired` delta (must be >= 1).
    pub hedge_fired: u64,
    /// `cluster.forward.failovers` delta (must be >= 1: the kill).
    pub failovers: u64,
    /// `serve.node.injected_kills` delta (must be exactly 1).
    pub injected_kills: u64,
    /// Sorted per-point fire counts from the fault registry.
    pub counts: Vec<(String, u64)>,
    /// Distinct pid lanes in the exported Chrome trace of the richest
    /// stitched tree (must be >= 2: router + at least one node).
    pub chrome_pids: usize,
    /// Router-reported merged p50/p99 of `serve.request.latency_ns`.
    pub merged_p50: f64,
    /// Router-reported merged p99.
    pub merged_p99: f64,
    /// Offline-recomputed merged p50 (direct node polls).
    pub offline_p50: f64,
    /// Offline-recomputed merged p99.
    pub offline_p99: f64,
    /// Nodes the router's `cluster-health` poll could not reach (must
    /// be exactly 1: the killed node, with no respawn).
    pub nodes_failed: u64,
    /// The `cluster-health` verdict string.
    pub verdict: String,
}

/// The fixed soak plan. Both rules are `p = 1` with a cap, so totals
/// are timing-independent: 1 slow + 1 kill = 2 injected faults.
fn soak_plan() -> FaultPlan {
    FaultPlan::new(0x00DA_C7ACE)
        .rule(FaultRule::always("cell.slow", 1).with_latency_ms(60))
        .rule(FaultRule::always("serve.node_kill", 1))
}

/// Expected per-point fire counts for [`soak_plan`] once every point
/// has been drawn past its cap.
fn expected_counts() -> Vec<(String, u64)> {
    vec![
        ("cell.slow".to_owned(), 1),
        ("serve.node_kill".to_owned(), 1),
    ]
}

fn counter(name: &'static str) -> u64 {
    sram_probe::counter(name).get()
}

/// Trace/routing counter snapshot, so the soak reports deltas instead
/// of process-lifetime totals.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    propagated: u64,
    stitched: u64,
    stitched_spans: u64,
    losers: u64,
    forests: u64,
    hedge_fired: u64,
    failovers: u64,
    injected_kills: u64,
}

impl Snapshot {
    fn take() -> Self {
        Self {
            propagated: counter("cluster.trace.propagated"),
            stitched: counter("cluster.trace.stitched"),
            stitched_spans: counter("cluster.trace.stitched_spans"),
            losers: counter("cluster.trace.losers"),
            forests: counter("cluster.trace.forests"),
            hedge_fired: counter("cluster.hedge.fired"),
            failovers: counter("cluster.forward.failovers"),
            injected_kills: counter("serve.node.injected_kills"),
        }
    }
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(REPLY_TIMEOUT))
        .map_err(|e| format!("set_timeout: {e}"))?;
    Ok(client)
}

/// Per-client tally from one wave: answered count, forest failures,
/// loser-marked replies, total spans, and the richest stitched tree
/// (most spans) seen — the Chrome-export audit runs on that one.
#[derive(Debug, Default, Clone)]
struct Tally {
    answered: usize,
    forests: usize,
    forest_details: Vec<String>,
    losers: usize,
    spans: u64,
    richest: Option<(u64, Json)>,
}

impl Tally {
    fn absorb(&mut self, other: Tally) {
        self.answered += other.answered;
        self.forests += other.forests;
        self.forest_details.extend(other.forest_details);
        self.losers += other.losers;
        self.spans += other.spans;
        if other.richest.as_ref().map(|(n, _)| *n) > self.richest.as_ref().map(|(n, _)| *n) {
            self.richest = other.richest;
        }
    }
}

/// `true` if any `cluster.attempt` branch of the stitched tree is
/// marked `hedge_loser: true`.
fn has_loser_branch(tree: &Json) -> bool {
    tree.get("children")
        .and_then(Json::as_array)
        .is_some_and(|children| {
            children
                .iter()
                .any(|c| c.get("hedge_loser").and_then(Json::as_bool) == Some(true))
        })
}

/// Validates one traced `ok` reply's stitched tree in place and folds
/// it into the tally.
fn audit_reply(id: &str, reply: &Json, tally: &mut Tally) -> Result<(), String> {
    let Some(tree) = reply.get("trace") else {
        return Err(format!(
            "traced reply to {id} carries no stitched tree: {}",
            reply.render()
        ));
    };
    if tree.get("name").and_then(Json::as_str) != Some("cluster.request") {
        return Err(format!(
            "reply to {id}: stitched root is not cluster.request: {}",
            tree.render()
        ));
    }
    match stitch::validate(tree) {
        Ok(spans) => {
            tally.spans += spans;
            if tally.richest.as_ref().is_none_or(|(n, _)| spans > *n) {
                tally.richest = Some((spans, tree.clone()));
            }
        }
        Err(e) => {
            tally.forests += 1;
            tally.forest_details.push(format!("{id}: {e}"));
        }
    }
    if has_loser_branch(tree) {
        tally.losers += 1;
        // A loser-bearing tree beats a span-rich one for the Chrome
        // audit: it exercises the cancelled branch's lane too.
        if let Ok(spans) = stitch::validate(tree) {
            tally.richest = Some((spans + 1_000, tree.clone()));
        }
    }
    Ok(())
}

/// Drives one client's traced request schedule through the router:
/// resend on `internal` and `busy`, reconnect on a dropped connection,
/// hard-fail on a timeout (hang), an attempt-budget blowout, or a
/// reply whose stitched tree is malformed.
fn run_client(addr: SocketAddr, index: usize, wave: &str) -> Result<Tally, String> {
    let mut client = connect(addr)?;
    let mut tally = Tally::default();
    let capacities = [128u64, 256, 512, 1024, 2048, 4096];
    for r in 0..REQUESTS_PER_CLIENT {
        let id = format!("{wave}{index}-r{r}");
        // Mixed traffic: capacities cycle (repeats become cache hits
        // for the per-shard breakdown) and both flavors appear.
        let flavor = if r % 2 == 0 { "hvt" } else { "lvt" };
        let line = format!(
            r#"{{"id":"{id}","op":"optimize","capacity_bytes":{},"flavor":"{flavor}","method":"m2","trace":true}}"#,
            capacities[(index + r) % capacities.len()]
        );
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(format!(
                    "request {id} unanswered after {MAX_ATTEMPTS} attempts"
                ));
            }
            match client.call_line(&line) {
                Ok(reply) => match reply.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        if reply.get("id").and_then(Json::as_str) != Some(id.as_str()) {
                            return Err(format!(
                                "reply stream misaligned at {id}: {}",
                                reply.render()
                            ));
                        }
                        audit_reply(&id, &reply, &mut tally)?;
                        tally.answered += 1;
                        break;
                    }
                    Some("internal") => {}
                    Some("busy") => std::thread::sleep(Duration::from_millis(25)),
                    other => {
                        return Err(format!(
                            "request {id}: unexpected status {other:?}: {}",
                            reply.render()
                        ))
                    }
                },
                Err(sram_serve::ServeError::Remote(_)) => {
                    client = connect(addr)?;
                }
                Err(sram_serve::ServeError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(format!("request {id}: reply timed out — cluster hang"));
                }
                Err(e) => return Err(format!("request {id}: transport error: {e}")),
            }
        }
    }
    Ok(tally)
}

/// One client wave. Returns the aggregate tally.
fn wave(addr: SocketAddr, name: &'static str) -> Result<Tally, String> {
    let results: Vec<Result<Tally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| scope.spawn(move || run_client(addr, i, name)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("client thread panicked".to_owned()),
            })
            .collect()
    });
    let mut total = Tally::default();
    for result in results {
        total.absorb(result?);
    }
    Ok(total)
}

/// Polls every *reachable* node directly for its raw
/// `serve.request.latency_ns` histogram and merges them offline — the
/// independent recompute the router's federated plane is checked
/// against. The killed node refuses dials and is skipped, exactly as
/// the collector records it as a hole.
fn offline_merge(nodes: &[String]) -> Result<QuantileSnapshot, String> {
    let mut merged = QuantileSnapshot::default();
    let mut polled = 0usize;
    for node in nodes {
        let addr: SocketAddr = node
            .parse()
            .map_err(|e| format!("node address {node}: {e}"))?;
        let Ok(mut client) = Client::connect(addr) else {
            continue; // the killed node
        };
        client
            .set_timeout(Some(REPLY_TIMEOUT))
            .map_err(|e| format!("set_timeout: {e}"))?;
        let reply = client
            .call_line(r#"{"op":"metrics"}"#)
            .map_err(|e| format!("direct metrics poll of {node}: {e}"))?;
        let Some(q) = reply
            .get("result")
            .and_then(|r| r.get("quantiles"))
            .and_then(|q| q.get("serve.request.latency_ns"))
        else {
            return Err(format!("{node} exported no serve.request.latency_ns"));
        };
        merged = merged.merge(&collector::parse_snapshot(q));
        polled += 1;
    }
    if polled == 0 {
        return Err("no node answered a direct metrics poll".to_owned());
    }
    Ok(merged)
}

/// Relative disagreement between two quantile estimates.
fn relative_drift(a: f64, b: f64) -> f64 {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / scale
}

/// Runs the full soak.
///
/// # Errors
///
/// Any hang, unanswered request, malformed stitched tree, or failed
/// federation poll.
pub fn soak(_threads: usize) -> Result<TraceSoak, String> {
    // Counter assertions need the probe layer on regardless of the
    // environment, and the trace audit needs every root sampled.
    sram_probe::set_level(sram_probe::Level::Summary);
    let (rate, seed) = sram_probe::trace::sampling();
    sram_probe::trace::set_sampling(1.0, seed);
    crate::chaos::silence_injected_panics();
    let before = Snapshot::take();

    let mut servers: BTreeMap<String, Server> = BTreeMap::new();
    for _ in 0..NODES {
        let server = sram_serve::spawn_local_node("127.0.0.1:0", NODE_WORKERS, NODE_QUEUE)
            .map_err(|e| format!("node spawn: {e}"))?;
        servers.insert(server.local_addr().to_string(), server);
    }
    let node_addrs: Vec<String> = servers.keys().cloned().collect();
    let router = Router::start(RouterConfig {
        nodes: node_addrs.clone(),
        replicas: 2,
        hedge_ms: 5,
        // Slow polls on purpose: the killed node must stay in the ring
        // long enough for ring-routed traffic to hit it and fail over
        // (eviction needs DOWN_AFTER_FAILURES consecutive poll
        // failures, so the dead node survives most of wave a).
        poll_interval: Duration::from_millis(250),
        ..RouterConfig::default()
    })
    .map_err(|e| format!("router start: {e}"))?;
    let addr = router.local_addr();

    // Let the first poll round see every node healthy, so the kill
    // lands under traffic rather than on the poller's first dial.
    std::thread::sleep(Duration::from_millis(100));
    sram_faults::install(&soak_plan());

    let outcome = (|| {
        let mut tally = wave(addr, "a")?;
        tally.absorb(wave(addr, "b")?);
        Ok::<Tally, String>(tally)
    })();
    let counts = sram_faults::counts();
    sram_faults::uninstall();
    let tally = match outcome {
        Ok(tally) => tally,
        Err(e) => {
            sram_probe::trace::set_sampling(rate, seed);
            router.shutdown();
            return Err(e);
        }
    };

    // Federation audit: traffic has quiesced; fold every pending
    // telemetry sample into the window ring so the router's poll and
    // the offline recompute read the same distribution.
    sram_probe::telemetry::force_sample();
    let offline = offline_merge(&node_addrs);
    let mut client = connect(addr)?;
    let metrics = client
        .call_line(r#"{"op":"cluster-metrics"}"#)
        .map_err(|e| format!("cluster-metrics: {e}"));
    let health = client
        .call_line(r#"{"op":"cluster-health"}"#)
        .map_err(|e| format!("cluster-health: {e}"));

    sram_probe::trace::set_sampling(rate, seed);
    router.shutdown();
    for (_, server) in servers {
        server.shutdown();
    }
    let (offline, metrics, health) = (offline?, metrics?, health?);

    let merged = metrics
        .get("merged")
        .and_then(|m| m.get("serve.request.latency_ns"))
        .ok_or("cluster-metrics carries no merged serve.request.latency_ns")?;
    let chrome_pids = tally.richest.as_ref().map_or(0, |(_, tree)| {
        let export = stitch::chrome_trace(tree);
        let mut pids: Vec<u64> = Json::parse(&export)
            .ok()
            .and_then(|parsed| {
                parsed
                    .get("traceEvents")
                    .and_then(Json::as_array)
                    .map(|events| {
                        events
                            .iter()
                            .filter_map(|e| e.get("pid").and_then(Json::as_u64))
                            .collect()
                    })
            })
            .unwrap_or_default();
        pids.sort_unstable();
        pids.dedup();
        pids.len()
    });

    let after = Snapshot::take();
    Ok(TraceSoak {
        nodes: NODES,
        requests: 2 * CLIENTS * REQUESTS_PER_CLIENT,
        answered: tally.answered,
        forest_replies: tally.forests,
        loser_replies: tally.losers,
        spans: tally.spans,
        propagated: after.propagated - before.propagated,
        stitched: after.stitched - before.stitched,
        stitched_spans: after.stitched_spans - before.stitched_spans,
        losers: after.losers - before.losers,
        forests: after.forests - before.forests,
        hedge_fired: after.hedge_fired - before.hedge_fired,
        failovers: after.failovers - before.failovers,
        injected_kills: after.injected_kills - before.injected_kills,
        counts,
        chrome_pids,
        merged_p50: merged.get("p50").and_then(Json::as_f64).unwrap_or(0.0),
        merged_p99: merged.get("p99").and_then(Json::as_f64).unwrap_or(0.0),
        offline_p50: offline.quantile(0.50),
        offline_p99: offline.quantile(0.99),
        nodes_failed: health
            .get("nodes_failed")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX),
        verdict: health
            .get("verdict")
            .and_then(Json::as_str)
            .unwrap_or("<missing>")
            .to_owned(),
    })
}

/// Formats the trace-soak report from a finished [`TraceSoak`],
/// enforcing every invariant.
///
/// # Errors
///
/// Any invariant violation: unanswered requests, a disconnected span
/// forest, a missing cancelled-hedge branch, a silent hedge or
/// failover, a wrong kill count, fault-count drift, a single-lane
/// Chrome export, or merged-quantile drift past the LogLinear bound.
pub fn report(t: &TraceSoak) -> Result<String, String> {
    let mut out = String::from(
        "Trace soak (sram-cluster): distributed tracing + federated metrics over 3 nodes\n\n",
    );
    out.push_str(&format!(
        "  soak:       {} traced requests over 2 waves x {CLIENTS} clients -> {} answered exactly once\n",
        t.requests, t.answered
    ));
    out.push_str(&format!(
        "  stitching:  {} trees stitched ({} spans), {} loser-marked replies, {} forests\n",
        t.stitched, t.stitched_spans, t.loser_replies, t.forest_replies
    ));
    out.push_str(&format!(
        "  tracing:    {} contexts propagated, {} cancelled-hedge trees kept, chrome export spans {} pid lanes\n",
        t.propagated, t.losers, t.chrome_pids
    ));
    out.push_str(&format!(
        "  routing:    hedges fired {}, failovers {} ({} injected kill)\n",
        t.hedge_fired, t.failovers, t.injected_kills
    ));
    let count_list: Vec<String> = t
        .counts
        .iter()
        .map(|(point, fires)| format!("{point}={fires}"))
        .collect();
    out.push_str(&format!(
        "  faults:     per-point fires: {}\n",
        count_list.join(", ")
    ));
    out.push_str(&format!(
        "  federation: merged p50 {:.0} ns / p99 {:.0} ns vs offline {:.0} / {:.0}; \
         health {} with {} node unreachable\n",
        t.merged_p50, t.merged_p99, t.offline_p50, t.offline_p99, t.verdict, t.nodes_failed
    ));

    if t.answered != t.requests {
        return Err(format!(
            "{} of {} requests answered",
            t.answered, t.requests
        ));
    }
    if t.forest_replies != 0 || t.forests != 0 {
        return Err(format!(
            "disconnected span forests: {} in replies, {} counted by the router",
            t.forest_replies, t.forests
        ));
    }
    if t.hedge_fired < 1 {
        return Err("no hedge fired despite the injected slow characterization".to_owned());
    }
    if t.failovers < 1 {
        return Err("no failover despite the injected node kill".to_owned());
    }
    if t.injected_kills != 1 {
        return Err(format!(
            "expected exactly 1 injected node kill, saw {}",
            t.injected_kills
        ));
    }
    if t.counts != expected_counts() {
        return Err(format!("fault counts drifted: {:?}", t.counts));
    }
    if t.loser_replies < 1 || t.losers < 1 {
        return Err(format!(
            "the cancelled hedge branch is missing: {} loser replies, {} loser trees counted",
            t.loser_replies, t.losers
        ));
    }
    if t.propagated < t.answered as u64 {
        return Err(format!(
            "only {} trace contexts propagated for {} answered requests",
            t.propagated, t.answered
        ));
    }
    if t.stitched < t.answered as u64 || t.stitched_spans < t.stitched {
        return Err(format!(
            "stitching fell behind: {} trees / {} spans for {} answers",
            t.stitched, t.stitched_spans, t.answered
        ));
    }
    if t.chrome_pids < 2 {
        return Err(format!(
            "chrome export collapsed to {} pid lane(s); router and nodes must differ",
            t.chrome_pids
        ));
    }
    for (label, merged, offline) in [
        ("p50", t.merged_p50, t.offline_p50),
        ("p99", t.merged_p99, t.offline_p99),
    ] {
        let drift = relative_drift(merged, offline);
        if drift > MAX_QUANTILE_RELATIVE_ERROR {
            return Err(format!(
                "merged {label} drifted {:.2}% from the offline recompute \
                 ({merged:.0} vs {offline:.0} ns; bound {:.2}%)",
                drift * 100.0,
                MAX_QUANTILE_RELATIVE_ERROR * 100.0
            ));
        }
    }
    if t.nodes_failed != 1 {
        return Err(format!(
            "cluster-health saw {} unreachable nodes; exactly the killed one expected",
            t.nodes_failed
        ));
    }
    if t.verdict != "degraded" && t.verdict != "unhealthy" {
        return Err(format!(
            "cluster-health verdict {:?} ignores the dead node",
            t.verdict
        ));
    }
    Ok(out)
}

/// Runs the soak and renders the invariant-checked report.
///
/// # Errors
///
/// Propagates [`soak`] failures and [`report`] invariant violations.
pub fn run(threads: usize) -> Result<String, String> {
    report(&soak(threads)?)
}

// The soak installs a process-global fault plan and sampling override,
// so its end-to-end test lives in `tests/trace_soak.rs` (its own
// process). Only global-free pieces are tested here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_plan_caps_sum_to_the_expected_injection_total() {
        let total: u64 = expected_counts().iter().map(|(_, fires)| fires).sum();
        assert_eq!(total, 2, "1 slow + 1 kill");
        let mut set = sram_faults::ActiveSet::new(&soak_plan());
        for _ in 0..1_000 {
            for (point, _) in expected_counts() {
                set.decide(&point);
            }
        }
        assert_eq!(set.counts(), expected_counts(), "caps bound every point");
        assert_eq!(set.injected_total(), total);
    }

    fn stitched_reply(loser: bool) -> Json {
        let loser_branch = if loser {
            r#",{"name":"cluster.attempt","node":"n2","via":"primary","hedge_loser":true,
               "start_ns":100,"dur_ns":900,
               "children":[{"name":"serve.request","id":9,"parent_span":7,
                            "start_ns":200,"dur_ns":500,"children":[]}]}"#
        } else {
            ""
        };
        Json::parse(&format!(
            r#"{{"status":"ok","id":"x","trace":{{
                "name":"cluster.request","trace_id":"00000000deadbeef","root_span":7,
                "start_ns":0,"dur_ns":1000,
                "children":[{{"name":"cluster.attempt","node":"n1","via":"hedge",
                    "hedge_loser":false,"start_ns":50,"dur_ns":400,
                    "children":[{{"name":"serve.request","id":4,"parent_span":7,
                                 "start_ns":60,"dur_ns":300,"children":[]}}]}}{loser_branch}]
            }}}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn audit_reply_accepts_a_connected_tree_and_spots_the_loser() {
        let mut tally = Tally::default();
        audit_reply("x", &stitched_reply(true), &mut tally).expect("valid tree");
        assert_eq!(tally.forests, 0);
        assert_eq!(tally.losers, 1);
        assert!(tally.spans >= 3);
        assert!(tally.richest.is_some());

        let mut tally = Tally::default();
        audit_reply("x", &stitched_reply(false), &mut tally).expect("valid tree");
        assert_eq!(tally.losers, 0);
    }

    #[test]
    fn audit_reply_rejects_a_reply_without_a_tree_and_counts_forests() {
        let mut tally = Tally::default();
        let bare = Json::parse(r#"{"status":"ok","id":"x"}"#).unwrap();
        assert!(audit_reply("x", &bare, &mut tally).is_err());

        // A subtree rooted under the wrong parent is a forest, counted
        // but not fatal at reply time (the report rejects it).
        let mut forest = stitched_reply(false);
        let rendered = forest
            .render()
            .replace("\"parent_span\":7", "\"parent_span\":8");
        forest = Json::parse(&rendered).unwrap();
        audit_reply("x", &forest, &mut tally).expect("forest is tallied, not thrown");
        assert_eq!(tally.forests, 1);
        assert_eq!(tally.forest_details.len(), 1);
    }

    fn healthy_outcome() -> TraceSoak {
        TraceSoak {
            nodes: NODES,
            requests: 64,
            answered: 64,
            forest_replies: 0,
            loser_replies: 2,
            spans: 300,
            propagated: 70,
            stitched: 66,
            stitched_spans: 310,
            losers: 2,
            forests: 0,
            hedge_fired: 3,
            failovers: 2,
            injected_kills: 1,
            counts: expected_counts(),
            chrome_pids: 3,
            merged_p50: 1_000_000.0,
            merged_p99: 8_000_000.0,
            offline_p50: 1_000_000.0,
            offline_p99: 8_000_000.0,
            nodes_failed: 1,
            verdict: "degraded".to_owned(),
        }
    }

    #[test]
    fn report_names_the_invariants() {
        let text = report(&healthy_outcome()).expect("healthy outcome renders");
        assert!(text.contains("answered exactly once"));
        assert!(text.contains("0 forests"));
        assert!(text.contains("pid lanes"));
        assert!(text.contains("merged p50"));
    }

    type Sabotage = fn(&mut TraceSoak);

    #[test]
    fn report_rejects_each_broken_invariant() {
        let broken: [(&str, Sabotage); 11] = [
            ("answered", |t| t.answered -= 1),
            ("forest", |t| t.forest_replies = 1),
            ("forest counter", |t| t.forests = 1),
            ("hedge", |t| t.hedge_fired = 0),
            ("failover", |t| t.failovers = 0),
            ("kills", |t| t.injected_kills = 0),
            ("counts", |t| t.counts.clear()),
            ("loser", |t| {
                t.loser_replies = 0;
                t.losers = 0;
            }),
            ("chrome lanes", |t| t.chrome_pids = 1),
            ("p99 drift", |t| t.merged_p99 = t.offline_p99 * 1.5),
            ("dead node", |t| t.nodes_failed = 0),
        ];
        for (label, sabotage) in broken {
            let mut t = healthy_outcome();
            sabotage(&mut t);
            assert!(report(&t).is_err(), "{label} violation must be fatal");
        }
    }

    #[test]
    fn drift_bound_is_the_loglinear_relative_error() {
        // Just inside the bound passes; just past it fails.
        let mut t = healthy_outcome();
        t.merged_p99 = t.offline_p99 * (1.0 + MAX_QUANTILE_RELATIVE_ERROR * 0.9);
        assert!(report(&t).is_ok());
        t.merged_p99 = t.offline_p99 * (1.0 + MAX_QUANTILE_RELATIVE_ERROR * 1.6);
        assert!(report(&t).is_err());
    }
}
