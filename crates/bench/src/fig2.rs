//! Figure 2: HSNM and leakage power of 6T-LVT vs. 6T-HVT under voltage
//! scaling (simulated with the full device/spice stack).

use crate::format_series;
use sram_cell::{AssistVoltages, CellCharacterizer, CellError};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::{Power, Voltage};

/// One sample of the Fig. 2 sweeps.
#[derive(Debug, Clone, PartialEq)]
pub struct VddPoint {
    /// Supply voltage.
    pub vdd: Voltage,
    /// Hold SNM at this supply.
    pub hsnm: Voltage,
    /// Hold leakage power at this supply.
    pub leakage: Power,
}

/// Sweeps `Vdd` from 100 mV to 450 mV for one flavor.
///
/// A collapsed butterfly (the cell can no longer hold data — the paper's
/// "6T-LVT cannot meet yield below 250 mV" regime at its extreme) is
/// recorded as zero HSNM.
///
/// # Errors
///
/// Propagates simulation failures other than margin collapse.
pub fn sweep(library: &DeviceLibrary, flavor: VtFlavor) -> Result<Vec<VddPoint>, CellError> {
    let mut out = Vec::new();
    for mv in (100..=450).step_by(50) {
        let vdd = Voltage::from_millivolts(f64::from(mv));
        let chr = CellCharacterizer::new(library, flavor)
            .with_vdd(vdd)
            .with_vtc_points(41);
        let bias = AssistVoltages::nominal(vdd);
        let hsnm = match chr.hold_snm(&bias) {
            Ok(v) => v,
            Err(CellError::MeasurementFailed { .. }) => Voltage::ZERO,
            Err(e) => return Err(e),
        };
        let leakage = chr.leakage_power(&bias)?;
        out.push(VddPoint { vdd, hsnm, leakage });
    }
    Ok(out)
}

/// Runs both sweeps and formats the Fig. 2 table, including the paper's
/// three headline checks (yield at 250 mV, 20× leakage at nominal, the
/// LVT@100 mV vs. HVT@450 mV comparison).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run() -> Result<String, CellError> {
    let lib = DeviceLibrary::sevennm();
    let lvt = sweep(&lib, VtFlavor::Lvt)?;
    let hvt = sweep(&lib, VtFlavor::Hvt)?;

    let rows: Vec<Vec<String>> = lvt
        .iter()
        .zip(&hvt)
        .map(|(l, h)| {
            vec![
                format!("{:.0}", l.vdd.millivolts()),
                format!("{:.1}", l.hsnm.millivolts()),
                format!("{:.1}", h.hsnm.millivolts()),
                format!("{:.1}", 0.35 * l.vdd.millivolts()),
                format!("{:.4}", l.leakage.nanowatts()),
                format!("{:.4}", h.leakage.nanowatts()),
            ]
        })
        .collect();
    let mut out = String::from("Fig. 2 — HSNM and leakage vs Vdd (6T-LVT vs 6T-HVT)\n\n");
    out.push_str(&format_series(
        &[
            "Vdd[mV]",
            "HSNM LVT[mV]",
            "HSNM HVT[mV]",
            "delta[mV]",
            "leak LVT[nW]",
            "leak HVT[nW]",
        ],
        &rows,
    ));

    // The summary ratios need both sweep endpoints; on an empty sweep the
    // table above is the whole report.
    let (Some(nominal_l), Some(nominal_h), Some(low_l)) = (lvt.last(), hvt.last(), lvt.first())
    else {
        return Ok(out);
    };
    out.push_str(&format!(
        "\nleakage ratio LVT/HVT at nominal: {:.1}x (paper: 20x)\n",
        nominal_l.leakage.watts() / nominal_h.leakage.watts()
    ));
    out.push_str(&format!(
        "LVT@100mV / HVT@450mV leakage: {:.1}x (paper: 5x)\n",
        low_l.leakage.watts() / nominal_h.leakage.watts()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hvt_holds_at_low_vdd_where_lvt_margins_sag() {
        let lib = DeviceLibrary::sevennm();
        let lvt = sweep(&lib, VtFlavor::Lvt).unwrap();
        let hvt = sweep(&lib, VtFlavor::Hvt).unwrap();
        // Paper Fig. 2(a): HVT HSNM exceeds LVT HSNM at every supply.
        for (l, h) in lvt.iter().zip(&hvt) {
            assert!(
                h.hsnm >= l.hsnm,
                "at {}: HVT {} < LVT {}",
                l.vdd,
                h.hsnm,
                l.hsnm
            );
        }
        // HVT meets delta = 0.35 Vdd from 350 mV up. (The paper claims
        // HVT holds at every shown supply; our softer 75 mV/dec
        // subthreshold slope loses the butterfly gain below ~300 mV —
        // recorded as a deviation in EXPERIMENTS.md.)
        for h in &hvt {
            if h.vdd.millivolts() >= 350.0 {
                assert!(
                    h.hsnm.volts() >= 0.35 * h.vdd.volts(),
                    "HVT fails hold yield at {}",
                    h.vdd
                );
            }
        }
        // LVT passes at nominal but fails under 250 mV (paper Fig. 2(a)).
        let lvt_nominal = lvt.last().unwrap();
        assert!(lvt_nominal.hsnm.volts() >= 0.35 * lvt_nominal.vdd.volts());
        let lvt_250 = lvt
            .iter()
            .find(|p| p.vdd.millivolts() == 250.0)
            .expect("250 mV sampled");
        assert!(
            lvt_250.hsnm.volts() < 0.35 * lvt_250.vdd.volts(),
            "LVT should fail hold yield at 250 mV like the paper"
        );
    }

    #[test]
    fn leakage_is_monotone_in_vdd() {
        let lib = DeviceLibrary::sevennm();
        for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
            let pts = sweep(&lib, flavor).unwrap();
            for w in pts.windows(2) {
                assert!(
                    w[1].leakage >= w[0].leakage,
                    "{flavor:?} leakage not monotone at {}",
                    w[1].vdd
                );
            }
        }
    }
}
