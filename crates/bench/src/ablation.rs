//! Ablation studies of the framework's design choices.
//!
//! * **A1 — rail pinning** (Section 5's argument): the paper pins `V_DDC`
//!   and `V_WL` at the minimum yield-meeting levels instead of sweeping
//!   them, arguing that raising either only costs energy. This ablation
//!   *does* sweep `V_DDC` and confirms the minimum-EDP point sits at the
//!   pinned level.
//! * **A2 — Pareto pruning**: evaluate the whole space once, keep the
//!   energy-delay Pareto front, and verify the EDP optimum lies on the
//!   (much smaller) front — quantifying how much a dominance-pruned
//!   search could skip.

use crate::format_series;
use sram_array::{ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery};
use sram_cell::CellCharacterization;
use sram_coopt::{
    CooptError, DesignSpace, EnergyDelayProduct, ExhaustiveSearch, Objective, ParetoFront,
    ParetoPoint, YieldConstraint,
};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::Voltage;

/// A1: EDP of the best design as a function of the `V_DDC` boost above
/// the yield minimum (550 mV for HVT). Returns `(boost_mv, edp)` pairs.
///
/// # Errors
///
/// Propagates search failures.
pub fn rail_pinning_sweep(capacity: Capacity) -> Result<Vec<(f64, f64)>, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let vwl = Voltage::from_millivolts(540.0);

    let mut out = Vec::new();
    for boost_mv in [0.0, 30.0, 60.0, 90.0] {
        let vddc = Voltage::from_millivolts(550.0 + boost_mv);
        let cell = CellCharacterization::paper_with_rails(VtFlavor::Hvt, vdd, vddc, vwl);
        let search = ExhaustiveSearch::new(
            &cell,
            &periphery,
            &params,
            &space,
            YieldConstraint::paper_delta(vdd),
            64,
        );
        let outcome = search.run(capacity, &EnergyDelayProduct)?;
        out.push((boost_mv, outcome.score));
    }
    Ok(out)
}

/// A2 result: Pareto front size vs. full space size, and whether the EDP
/// optimum is on the front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoAblation {
    /// Total candidates evaluated.
    pub evaluated: usize,
    /// Non-dominated candidates.
    pub front_size: usize,
    /// EDP of the exhaustive winner.
    pub exhaustive_edp: f64,
    /// EDP of the best front point.
    pub front_edp: f64,
}

/// A2: full evaluation vs. Pareto front for one capacity.
///
/// # Errors
///
/// Propagates evaluation failures.
pub fn pareto_ablation(capacity: Capacity) -> Result<ParetoAblation, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let cell = CellCharacterization::paper_hvt(vdd);
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let constraint = YieldConstraint::paper_delta(vdd);

    let mut front: ParetoFront<(u32, u32, u32, i32)> = ParetoFront::new();
    let mut evaluated = 0usize;
    let mut best_edp = f64::INFINITY;
    for org in ArrayOrganization::enumerate(capacity, 64, space.rows_range()) {
        for &vssc in space.vssc_values() {
            if !constraint.check_snapshot(&cell, vssc) {
                continue;
            }
            for &n_pre in &space.npre_values() {
                for &n_wr in &space.nwr_values() {
                    let metrics = ArrayModel::new(org, &cell, &periphery, &params)
                        .with_precharge_fins(n_pre)
                        .with_write_fins(n_wr)
                        .with_vssc(vssc)
                        .evaluate()?;
                    evaluated += 1;
                    best_edp = best_edp.min(EnergyDelayProduct.score(&metrics));
                    front.offer(ParetoPoint {
                        energy: metrics.energy,
                        delay: metrics.delay,
                        tag: (org.rows(), n_pre, n_wr, vssc.millivolts() as i32),
                    });
                }
            }
        }
    }
    let front_edp = front
        .min_edp()
        .map(|p| (p.energy * p.delay).joule_seconds())
        .unwrap_or(f64::INFINITY);
    Ok(ParetoAblation {
        evaluated,
        front_size: front.len(),
        exhaustive_edp: best_edp,
        front_edp,
    })
}

/// A4: exhaustive vs. coordinate-descent search — optimum gap and
/// evaluation count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicAblation {
    /// Evaluations spent by the exhaustive search.
    pub exhaustive_evals: usize,
    /// Evaluations spent by coordinate descent.
    pub descent_evals: usize,
    /// Relative EDP gap of the descent result vs. the global optimum.
    pub edp_gap: f64,
}

/// A4: runs both searches on the full paper space for one capacity.
///
/// # Errors
///
/// Propagates search failures.
pub fn heuristic_ablation(capacity: Capacity) -> Result<HeuristicAblation, CooptError> {
    use sram_coopt::CoordinateDescent;
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let cell = CellCharacterization::paper_hvt(vdd);
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default();
    let constraint = YieldConstraint::paper_delta(vdd);

    let exhaustive = ExhaustiveSearch::new(&cell, &periphery, &params, &space, constraint, 64)
        .run(capacity, &EnergyDelayProduct)?;
    let descent = CoordinateDescent::new(&cell, &periphery, &params, &space, constraint, 64)
        .run(capacity, &EnergyDelayProduct)?;
    Ok(HeuristicAblation {
        exhaustive_evals: exhaustive.stats.examined,
        descent_evals: descent.stats.examined,
        edp_gap: descent.score / exhaustive.score - 1.0,
    })
}

/// A5: Table 3 vs. per-word energy accounting — does the optimizer pick
/// a different design, and how do absolute energies compare?
///
/// # Errors
///
/// Propagates search failures.
pub fn accounting_ablation(capacity: Capacity) -> Result<String, CooptError> {
    let lib = DeviceLibrary::sevennm();
    let vdd = lib.nominal_vdd();
    let cell = CellCharacterization::paper_hvt(vdd);
    let periphery = Periphery::new(&lib);
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let constraint = YieldConstraint::paper_delta(vdd);

    let mut lines = String::new();
    for (name, params) in [
        ("Table 3 (paper)", ArrayParams::paper_defaults()),
        ("per-word", ArrayParams::per_word_accounting()),
    ] {
        let outcome = ExhaustiveSearch::new(&cell, &periphery, &params, &space, constraint, 64)
            .run(capacity, &EnergyDelayProduct)?;
        lines.push_str(&format!(
            "  {name:<16}: best {}x{} N_pre={} N_wr={} V_SSC={:.0}mV  E={}  D={}\n",
            outcome.best.organization.rows(),
            outcome.best.organization.cols(),
            outcome.best.n_pre,
            outcome.best.n_wr,
            outcome.best.vssc.millivolts(),
            outcome.metrics.energy,
            outcome.metrics.delay,
        ));
    }
    Ok(lines)
}

/// Runs all ablations and formats them.
///
/// # Errors
///
/// Propagates failures from any ablation.
pub fn run() -> Result<String, CooptError> {
    let capacity = Capacity::from_bytes(4096);
    let rails = rail_pinning_sweep(capacity)?;
    let rows: Vec<Vec<String>> = rails
        .iter()
        .map(|&(boost, edp)| {
            vec![
                format!("{:.0}", 550.0 + boost),
                format!("{:.4}", edp * 1e24),
                format!("{:+.2}%", (edp / rails[0].1 - 1.0) * 100.0),
            ]
        })
        .collect();
    let mut out = format!(
        "A1 — V_DDC pinning ablation (4 KB, HVT): EDP vs V_DDC above the yield minimum\n\n{}\n",
        format_series(&["V_DDC[mV]", "EDP[1e-24 J*s]", "vs pinned"], &rows)
    );

    let p = pareto_ablation(capacity)?;
    out.push_str(&format!(
        "A2 — Pareto pruning (4 KB, HVT-M2 space): {} of {} candidates are non-dominated ({:.2}%);\n\
         EDP optimum on front: {} (exhaustive {:.4e}, front {:.4e})\n\n",
        p.front_size,
        p.evaluated,
        100.0 * p.front_size as f64 / p.evaluated as f64,
        if (p.front_edp - p.exhaustive_edp).abs() < 1e-32 { "yes" } else { "NO" },
        p.exhaustive_edp,
        p.front_edp,
    ));

    let h = heuristic_ablation(capacity)?;
    out.push_str(&format!(
        "A4 — exhaustive vs coordinate descent (4 KB): descent reaches within {:.2}% of the\n\
         optimum using {} evaluations vs {} exhaustive ({:.1}x fewer)\n\n",
        h.edp_gap * 100.0,
        h.descent_evals,
        h.exhaustive_evals,
        h.exhaustive_evals as f64 / h.descent_evals as f64,
    ));

    out.push_str("A5 — Table 3 vs per-word energy accounting (4 KB, HVT):\n");
    out.push_str(&accounting_ablation(capacity)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_rail_is_near_edp_optimal() {
        // Section 5 argues boosting V_DDC beyond the yield minimum only
        // adds energy. Strictly, Table 2 ties I_read to V_DDC, so a boost
        // *does* shave bitline delay; the ablation shows the pinned rail
        // is within a few percent of optimal rather than exactly optimal.
        let sweep = rail_pinning_sweep(Capacity::from_bytes(1024)).unwrap();
        let pinned = sweep[0].1;
        for &(boost, edp) in &sweep {
            let rel = (edp - pinned) / pinned;
            assert!(
                rel.abs() < 0.10,
                "EDP at +{boost} mV deviates {:.1}% from pinned",
                rel * 100.0
            );
        }
    }

    #[test]
    fn heuristic_saves_evaluations_without_losing_much() {
        let h = heuristic_ablation(Capacity::from_bytes(1024)).unwrap();
        assert!(h.edp_gap >= -1e-12);
        assert!(h.edp_gap < 0.05, "gap {:.3}", h.edp_gap);
        assert!(h.descent_evals * 10 < h.exhaustive_evals);
    }

    #[test]
    fn accounting_ablation_reports_both_policies() {
        let text = accounting_ablation(Capacity::from_bytes(1024)).unwrap();
        assert!(text.contains("Table 3"));
        assert!(text.contains("per-word"));
    }

    #[test]
    fn edp_optimum_lies_on_pareto_front() {
        let p = pareto_ablation(Capacity::from_bytes(1024)).unwrap();
        assert!(p.front_size > 0);
        assert!(p.front_size < p.evaluated / 10, "front should prune >90%");
        assert!(
            (p.front_edp - p.exhaustive_edp).abs() <= 1e-30,
            "front EDP {} vs exhaustive {}",
            p.front_edp,
            p.exhaustive_edp
        );
    }
}
