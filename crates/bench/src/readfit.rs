//! Section 5's read-current power-law regression:
//! `I_read = b · (V_DDC − V_SSC − Vt)^a`.
//!
//! The paper reports `a = 1.3`, `b = 9.5e-5 A/V^1.3`, `Vt = 335 mV` for
//! HVT, and claims a 4.3× read-current gain from `V_SSC = −240 mV` at
//! `V_DDC = 550 mV`. (The claim is internally inconsistent with the fit —
//! the formula gives 2.65×; see EXPERIMENTS.md. Our simulation, which
//! captures the storage-node drop to `V_SSC` raising both `Vgs` and `Vds`
//! of the access device, lands near the 4.3× figure.)

use sram_cell::{AssistVoltages, CellCharacterizer, CellError, ReadCurrentFit};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::{Current, Voltage};

/// Measures `I_read` over the `V_SSC` sweep at the paper's HVT operating
/// point (`V_DDC = 550 mV`) and regresses the three-parameter power law —
/// the same single-variable family the paper fits for its negative-Gnd
/// analysis. (A joint `(V_DDC, V_SSC)` grid does not collapse onto a 1-D
/// law: raising `V_DDC` strengthens the pull-down *gate* as well, which
/// the `V_DDC − V_SSC − Vt` abstraction cannot represent.)
///
/// # Errors
///
/// Propagates simulation failures.
pub fn fit(library: &DeviceLibrary) -> Result<ReadCurrentFit, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt);
    let vdd = library.nominal_vdd();
    let mut samples: Vec<(Voltage, Current)> = Vec::new();
    for k in 0..=12 {
        let vssc = Voltage::from_millivolts(-20.0 * f64::from(k));
        let bias = AssistVoltages::nominal(vdd)
            .with_vddc(Voltage::from_millivolts(550.0))
            .with_vssc(vssc);
        let i = chr.read_current(&bias)?;
        samples.push((bias.read_swing(), i));
    }
    ReadCurrentFit::fit(&samples)
}

/// The simulated negative-Gnd gain at the paper's Fig. 4 operating point.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn negative_gnd_gain(library: &DeviceLibrary) -> Result<f64, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt);
    let vdd = library.nominal_vdd();
    let base = AssistVoltages::nominal(vdd).with_vddc(Voltage::from_millivolts(550.0));
    let assisted = base.with_vssc(Voltage::from_millivolts(-240.0));
    Ok(chr.read_current(&assisted)? / chr.read_current(&base)?)
}

/// Runs the regression and formats the comparison with the paper.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run() -> Result<String, CellError> {
    let lib = DeviceLibrary::sevennm();
    let f = fit(&lib)?;
    let gain = negative_gnd_gain(&lib)?;
    Ok(format!(
        "Read-current fit I_read = b (V_DDC - V_SSC - Vt)^a over the simulated grid:\n\
         \n\
           a  = {:.3}        (paper: 1.3)\n\
           b  = {:.3e} A/V^a (paper: 9.5e-5)\n\
           Vt = {:.1} mV     (paper: 335 mV)\n\
           rms relative residual = {:.3}\n\
         \n\
         negative-Gnd gain at V_DDC = 550 mV, V_SSC: 0 -> -240 mV:\n\
           simulated: {:.2}x   paper text: 4.3x   paper's own fit formula: 2.65x\n",
        f.a,
        f.b,
        f.vt.millivolts(),
        f.rms_relative_error,
        gain,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressed_exponent_is_near_paper() {
        let lib = DeviceLibrary::sevennm();
        let f = fit(&lib).unwrap();
        assert!(
            f.a > 1.0 && f.a < 1.9,
            "fitted exponent a = {:.3} far from the paper's 1.3",
            f.a
        );
        assert!(
            f.rms_relative_error < 0.25,
            "poor fit: {}",
            f.rms_relative_error
        );
    }

    #[test]
    fn simulated_gain_is_between_formula_and_text() {
        let lib = DeviceLibrary::sevennm();
        let gain = negative_gnd_gain(&lib).unwrap();
        assert!(gain > 2.0 && gain < 7.0, "gain = {gain:.2}");
    }
}
