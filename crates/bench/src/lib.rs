//! Experiment drivers regenerating every figure and table of the paper.
//!
//! Each module reproduces one evaluation artifact (see DESIGN.md §4 for
//! the experiment index) and returns both structured data (consumed by
//! the criterion benches and the integration tests) and formatted text
//! (emitted by the `reproduce` binary):
//!
//! | module | artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2(a) HSNM vs. Vdd, Fig. 2(b) leakage vs. Vdd |
//! | [`fig3`] | Fig. 3(a) LVT/HVT read FoMs, (b) Vdd boost, (c) negative Gnd, (d) WL underdrive |
//! | [`fig5`] | Fig. 5(a) WL overdrive, (b) negative bitline |
//! | [`table4`] | Table 4 optimal design parameters |
//! | [`fig7`] | Fig. 7(a)–(c) delay/energy/EDP vs. capacity, (d) BL vs. total delay |
//! | [`readfit`] | Section 5's `I_read = b(V_DDC − V_SSC − Vt)^a` regression |
//! | [`yieldk`] | The μ−kσ statistical-constraint extension |
//! | [`ablation`] | Rail-pinning, Pareto-pruning, heuristic-search, and energy-accounting ablations |
//! | [`extensions`] | Banking, drowsy standby, statistically derated optimization |
//! | [`serve`] | Query-server bench: batching, result cache, TCP round trip |
//! | [`trajectory`] | Performance trajectory: search throughput, cache latency, trace overhead |
//! | [`chaos`] | Chaos soak: deterministic fault injection under multi-client load |
//! | [`telemetry`] | Telemetry soak: windowed metrics, SLO health, sampled tracing under load |
//! | [`cluster`] | Cluster soak: router failover, hedging, and key affinity over 3 nodes |
//! | [`trace_soak`] | Trace soak: distributed tracing, span stitching, federated metrics |
//! | [`cli`] | Experiment registry + selection for the `reproduce` binary |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
pub mod cli;
pub mod cluster;
pub mod extensions;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig7;
pub mod readfit;
pub mod serve;
pub mod table4;
pub mod telemetry;
pub mod trace_soak;
pub mod trajectory;
pub mod yieldk;

/// Formats a `(x, series...)` table with a header as aligned text.
#[must_use]
pub fn format_series(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:>w$}  ", h, w = widths[i]));
    }
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_series_aligns_columns() {
        let text = format_series(
            &["x", "value"],
            &[
                vec!["1".into(), "10.5".into()],
                vec!["100".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("value"));
        assert_eq!(lines[1].len(), lines[2].len());
    }
}
