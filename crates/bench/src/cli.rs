//! Experiment registry and selection for the `reproduce` binary.
//!
//! The binary's argument handling and help text are generated from
//! [`EXPERIMENTS`], so the usage message can never drift from what
//! actually runs (it previously listed stale summaries and omitted
//! opt-in experiments entirely).

/// Runner signature: every experiment receives the worker-thread
/// budget (single-threaded experiments ignore it) and returns its
/// formatted report.
pub type Runner = fn(usize) -> Result<String, String>;

/// One selectable experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// CLI name.
    pub name: &'static str,
    /// One-line summary shown in the usage message.
    pub summary: &'static str,
    /// Included in `reproduce all`? Opt-in experiments run only when
    /// named explicitly.
    pub in_all: bool,
    /// The driver.
    pub run: Runner,
}

fn fig2(_threads: usize) -> Result<String, String> {
    crate::fig2::run().map_err(|e| e.to_string())
}

fn fig3(_threads: usize) -> Result<String, String> {
    crate::fig3::run().map_err(|e| e.to_string())
}

fn fig5(_threads: usize) -> Result<String, String> {
    crate::fig5::run().map_err(|e| e.to_string())
}

fn table4(threads: usize) -> Result<String, String> {
    crate::table4::run(threads).map_err(|e| e.to_string())
}

fn fig7(threads: usize) -> Result<String, String> {
    crate::fig7::run(threads).map_err(|e| e.to_string())
}

fn readfit(_threads: usize) -> Result<String, String> {
    crate::readfit::run().map_err(|e| e.to_string())
}

fn yieldk(_threads: usize) -> Result<String, String> {
    crate::yieldk::run(60).map_err(|e| e.to_string())
}

fn ablation(_threads: usize) -> Result<String, String> {
    crate::ablation::run().map_err(|e| e.to_string())
}

fn extensions(_threads: usize) -> Result<String, String> {
    crate::extensions::run().map_err(|e| e.to_string())
}

fn rails_sim(_threads: usize) -> Result<String, String> {
    crate::extensions::simulated_rail_ablation().map_err(|e| e.to_string())
}

fn serve_bench(threads: usize) -> Result<String, String> {
    crate::serve::run(threads).map_err(|e| e.to_string())
}

fn bench_trajectory(threads: usize) -> Result<String, String> {
    crate::trajectory::run(threads)
}

fn chaos_soak(threads: usize) -> Result<String, String> {
    crate::chaos::run(threads)
}

fn telemetry_soak(threads: usize) -> Result<String, String> {
    crate::telemetry::run(threads)
}

fn cluster_soak(threads: usize) -> Result<String, String> {
    crate::cluster::run(threads)
}

fn trace_soak(threads: usize) -> Result<String, String> {
    crate::trace_soak::run(threads)
}

/// Every experiment the binary can run, in execution order.
pub const EXPERIMENTS: &[Experiment] = &[
    Experiment {
        name: "fig2",
        summary: "Fig. 2: HSNM + leakage vs Vdd (6T-LVT vs 6T-HVT)",
        in_all: true,
        run: fig2,
    },
    Experiment {
        name: "fig3",
        summary: "Fig. 3: read-assist sweeps (Vdd boost, negative Gnd, WL underdrive)",
        in_all: true,
        run: fig3,
    },
    Experiment {
        name: "fig5",
        summary: "Fig. 5: write-assist sweeps (WL overdrive, negative bitline)",
        in_all: true,
        run: fig5,
    },
    Experiment {
        name: "table4",
        summary: "Table 4: optimal design parameters (exhaustive co-optimization)",
        in_all: true,
        run: table4,
    },
    Experiment {
        name: "fig7",
        summary: "Fig. 7: delay/energy/EDP vs capacity + bitline decomposition",
        in_all: true,
        run: fig7,
    },
    Experiment {
        name: "readfit",
        summary: "Section 5's read-current power-law regression",
        in_all: true,
        run: readfit,
    },
    Experiment {
        name: "yield",
        summary: "mu - k*sigma statistical yield constraint (Monte Carlo)",
        in_all: true,
        run: yieldk,
    },
    Experiment {
        name: "ablation",
        summary: "rail-pinning, Pareto, heuristic, accounting ablations",
        in_all: true,
        run: ablation,
    },
    Experiment {
        name: "extensions",
        summary: "banking, drowsy standby, derated optimization",
        in_all: true,
        run: extensions,
    },
    Experiment {
        name: "serve-bench",
        summary: "query server: batch coalescing, result cache, TCP round trip",
        in_all: true,
        run: serve_bench,
    },
    Experiment {
        name: "bench-trajectory",
        summary: "perf trajectory: search points/s, cache latency, trace overhead (writes BENCH_trajectory.json)",
        in_all: false,
        run: bench_trajectory,
    },
    Experiment {
        name: "rails-sim",
        summary: "full-simulation (non-LUT) rail ablation — slow, opt-in",
        in_all: false,
        run: rails_sim,
    },
    Experiment {
        name: "chaos-soak",
        summary: "fault-injection soak: panic isolation, retry, cancellation under load — opt-in",
        in_all: false,
        run: chaos_soak,
    },
    Experiment {
        name: "telemetry-soak",
        summary: "telemetry soak: windowed metrics, SLO health verdict, sampled tracing — opt-in",
        in_all: false,
        run: telemetry_soak,
    },
    Experiment {
        name: "cluster-soak",
        summary: "cluster soak: router failover, hedged requests, key affinity over 3 nodes — opt-in",
        in_all: false,
        run: cluster_soak,
    },
    Experiment {
        name: "trace-soak",
        summary: "trace soak: cross-node span stitching, hedge losers, federated quantiles — opt-in",
        in_all: false,
        run: trace_soak,
    },
];

/// Outcome of resolving a CLI experiment argument.
#[derive(Debug)]
pub enum Selection {
    /// Experiments to run, plus those `all` deliberately skips (empty
    /// unless the argument was `all`).
    Run {
        /// Experiments to execute, in registry order.
        chosen: Vec<&'static Experiment>,
        /// Opt-in experiments excluded from `all`.
        skipped: Vec<&'static Experiment>,
    },
    /// The argument named no experiment.
    Unknown(String),
}

/// Resolves an experiment argument (`all` or a name from
/// [`EXPERIMENTS`]).
#[must_use]
pub fn select(which: &str) -> Selection {
    if which == "all" {
        let (chosen, skipped): (Vec<_>, Vec<_>) = EXPERIMENTS.iter().partition(|e| e.in_all);
        Selection::Run { chosen, skipped }
    } else if let Some(experiment) = EXPERIMENTS.iter().find(|e| e.name == which) {
        Selection::Run {
            chosen: vec![experiment],
            skipped: Vec::new(),
        }
    } else {
        Selection::Unknown(which.to_owned())
    }
}

/// The usage message, generated from [`EXPERIMENTS`].
#[must_use]
pub fn usage() -> String {
    let width = EXPERIMENTS
        .iter()
        .map(|e| e.name.len())
        .max()
        .unwrap_or(0)
        .max("all".len());
    let mut out = String::from("reproduce [experiment] [--probe-json <path>]\n\nexperiments:\n");
    for e in EXPERIMENTS {
        let opt_in = if e.in_all { "" } else { " (not part of `all`)" };
        out.push_str(&format!("  {:<width$}  {}{}\n", e.name, e.summary, opt_in));
    }
    out.push_str(&format!(
        "  {:<width$}  every experiment above not marked opt-in (default)\n",
        "all"
    ));
    out.push_str(
        "\nprobes:\n  SRAM_PROBE=1|2        collect instrumentation (see README \
         \"Observability\")\n  --probe-json <path>   write counters/histograms as JSON \
         (implies SRAM_PROBE=1)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selects_everything_except_opt_in() {
        let Selection::Run { chosen, skipped } = select("all") else {
            panic!("`all` must resolve");
        };
        assert_eq!(chosen.len() + skipped.len(), EXPERIMENTS.len());
        assert!(chosen.iter().all(|e| e.in_all));
        assert_eq!(
            skipped.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec![
                "bench-trajectory",
                "rails-sim",
                "chaos-soak",
                "telemetry-soak",
                "cluster-soak",
                "trace-soak"
            ]
        );
    }

    #[test]
    fn named_selection_is_exact() {
        for e in EXPERIMENTS {
            let Selection::Run { chosen, skipped } = select(e.name) else {
                panic!("{} must resolve", e.name);
            };
            assert_eq!(chosen.len(), 1);
            assert_eq!(chosen[0].name, e.name);
            assert!(skipped.is_empty());
        }
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(matches!(select("fig9"), Selection::Unknown(n) if n == "fig9"));
        assert!(matches!(select(""), Selection::Unknown(_)));
    }

    #[test]
    fn usage_lists_every_experiment() {
        let usage = usage();
        for e in EXPERIMENTS {
            assert!(usage.contains(e.name), "usage missing {}", e.name);
            assert!(
                usage.contains(e.summary),
                "usage missing summary of {}",
                e.name
            );
        }
        // The opt-in experiment is listed but marked.
        assert!(usage.contains("rails-sim"));
        assert!(usage.contains("not part of `all`"));
        assert!(usage.contains("--probe-json"));
    }

    #[test]
    fn experiment_names_are_unique() {
        let mut names: Vec<_> = EXPERIMENTS.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EXPERIMENTS.len());
    }
}
