//! `chaos-soak`: opt-in robustness experiment — a multi-client TCP
//! load run against the query server with a fixed fault plan installed,
//! hard-failing on any hang, double reply, dropped reply, or probe
//! counter drift.
//!
//! Four phases:
//!
//! 1. **replay** — two [`sram_faults::ActiveSet`]s built from the same
//!    plan and seed must produce bit-identical fire sequences over
//!    10,000 draws of a fractional-probability rule.
//! 2. **soak** — several concurrent clients drive a real server while
//!    the plan injects NaN characterizations (recovered by the engine's
//!    bounded retry), a slow characterization, two worker panics
//!    (isolated and respawned), and one connection drop (survived by
//!    reconnect). Every request must be answered exactly once; a
//!    stream-alignment check at the end catches double or dropped
//!    replies.
//! 3. **repeat** — the soak runs a second time from a fresh install of
//!    the same plan; the per-point fire counts must be identical.
//! 4. **deadline** — a deadline-bounded optimize against a warm LUT
//!    must return the typed cancellation promptly, not burn the sweep.
//!
//! Determinism: every rule fires with probability 1 under a `max_fires`
//! cap, so the total `faults.injected` count is the sum of the caps
//! regardless of thread interleaving — which requests *observe* each
//! fault varies, the totals never do.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sram_array::Capacity;
use sram_coopt::{CoOptimizationFramework, DesignSpace, EnergyDelayProduct, Method};
use sram_device::VtFlavor;
use sram_faults::{ActiveSet, CancelReason, CancelToken, FaultPlan, FaultRule};
use sram_serve::{CacheConfig, Client, Engine, Json, Server, ServerConfig};

/// Concurrent soak clients.
const CLIENTS: usize = 4;
/// Requests each client must see answered exactly once.
const REQUESTS_PER_CLIENT: usize = 6;
/// Resend budget per request (panics, busy rejections, and the
/// connection drop all trigger resends; a request needing more than
/// this is effectively hung).
const MAX_ATTEMPTS: usize = 10;
/// Client-side reply timeout — the hang detector.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Structured outcome (consumed by the unit tests; the report is built
/// from it).
#[derive(Debug, Clone)]
pub struct ChaosSoak {
    /// Phase 1: were the two seeded fire sequences bit-identical?
    pub replay_identical: bool,
    /// Requests issued across all soak clients (per round).
    pub requests: usize,
    /// Requests answered `ok` exactly once (must equal `requests`).
    pub answered: usize,
    /// Typed `internal` replies observed (isolated worker panics).
    pub internal_replies: usize,
    /// `busy` backpressure replies observed.
    pub busy_replies: usize,
    /// Client reconnects after the injected connection drop.
    pub reconnects: usize,
    /// `serve.worker.panics` delta across the first soak round.
    pub worker_panics: u64,
    /// `serve.retry.recovered` delta across the first soak round.
    pub retry_recovered: u64,
    /// `faults.injected` probe delta across the first soak round.
    pub injected_probe: u64,
    /// The registry's own injected total (drift check partner).
    pub injected_registry: u64,
    /// Sorted per-point fire counts from round one.
    pub counts: Vec<(String, u64)>,
    /// Phase 3: did round two reproduce round one's counts exactly?
    pub counts_reproduced: bool,
    /// Phase 4: did the deadline-bounded optimize return the typed
    /// cancellation?
    pub deadline_typed: bool,
    /// Phase 4 wall time — must be far below an uncancelled sweep.
    pub deadline_elapsed: Duration,
}

/// The fixed soak plan. Every rule is `p = 1` with a cap, so totals are
/// timing-independent: 2 + 1 + 2 + 1 = 6 injected faults per round.
fn soak_plan() -> FaultPlan {
    FaultPlan::new(0x00DA_C201)
        .rule(FaultRule::always("cell.characterize_nan", 2))
        .rule(FaultRule::always("cell.slow", 1).with_latency_ms(25))
        .rule(FaultRule::always("serve.worker_panic", 2))
        .rule(FaultRule::always("serve.conn_drop", 1))
}

/// Expected per-point fire counts for [`soak_plan`] once the soak has
/// drawn every point past its cap.
fn expected_counts() -> Vec<(String, u64)> {
    vec![
        ("cell.characterize_nan".to_owned(), 2),
        ("cell.slow".to_owned(), 1),
        ("serve.conn_drop".to_owned(), 1),
        ("serve.worker_panic".to_owned(), 2),
    ]
}

fn counter(name: &'static str) -> u64 {
    sram_probe::counter(name).get()
}

fn engine(threads: usize) -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    ))
}

/// Per-client tally from one soak round.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    answered: usize,
    internal: usize,
    busy: usize,
    reconnects: usize,
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(REPLY_TIMEOUT))
        .map_err(|e| format!("set_timeout: {e}"))?;
    Ok(client)
}

/// Drives one client's request schedule to completion: resend on
/// `internal` and `busy`, reconnect-and-resend on a dropped connection,
/// hard-fail on a timeout (hang) or an attempt-budget blowout
/// (unanswered request).
fn run_client(addr: SocketAddr, index: usize) -> Result<ClientTally, String> {
    let mut client = connect(addr)?;
    let mut tally = ClientTally::default();
    let capacities = [128u64, 256, 512, 1024, 2048, 4096];
    for r in 0..REQUESTS_PER_CLIENT {
        let id = format!("c{index}-r{r}");
        let line = format!(
            r#"{{"id":"{id}","op":"optimize","capacity_bytes":{},"flavor":"hvt","method":"m2"}}"#,
            capacities[r % capacities.len()]
        );
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(format!(
                    "request {id} unanswered after {MAX_ATTEMPTS} attempts"
                ));
            }
            match client.call_line(&line) {
                Ok(reply) => match reply.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        if reply.get("id").and_then(Json::as_str) != Some(id.as_str()) {
                            return Err(format!(
                                "reply stream misaligned at {id}: {}",
                                reply.render()
                            ));
                        }
                        tally.answered += 1;
                        break;
                    }
                    Some("internal") => tally.internal += 1,
                    Some("busy") => {
                        tally.busy += 1;
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    other => {
                        return Err(format!(
                            "request {id}: unexpected status {other:?}: {}",
                            reply.render()
                        ))
                    }
                },
                Err(sram_serve::ServeError::Remote(_)) => {
                    // The injected connection drop: clean EOF, no reply.
                    tally.reconnects += 1;
                    client = connect(addr)?;
                }
                Err(sram_serve::ServeError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(format!("request {id}: reply timed out — server hang"));
                }
                Err(e) => return Err(format!("request {id}: transport error: {e}")),
            }
        }
    }
    // Stream-alignment epilogue: if any earlier reply was doubled or
    // dropped, this echo comes back with the wrong id.
    let fin = format!("fin-{index}");
    let reply = client
        .call_line(&format!(r#"{{"id":"{fin}","op":"stats"}}"#))
        .map_err(|e| format!("final stats call: {e}"))?;
    if reply.get("id").and_then(Json::as_str) != Some(fin.as_str()) {
        return Err(format!(
            "double or dropped reply detected: final echo was {}",
            reply.render()
        ));
    }
    Ok(tally)
}

/// One soak round: fresh engine + server, concurrent clients, graceful
/// shutdown. Returns the aggregate tally.
fn soak_round(threads: usize) -> Result<ClientTally, String> {
    let server = Server::start(
        engine(threads),
        ServerConfig {
            workers: 2,
            cache_file: None,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr();

    let mut total = ClientTally::default();
    let results: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| scope.spawn(move || run_client(addr, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("client thread panicked".to_owned()),
            })
            .collect()
    });
    server.shutdown();
    for result in results {
        let tally = result?;
        total.answered += tally.answered;
        total.internal += tally.internal;
        total.busy += tally.busy;
        total.reconnects += tally.reconnects;
    }
    Ok(total)
}

/// Keeps the injected worker panics (which are the point of the
/// exercise) from spraying backtraces over the report; every other
/// panic still reaches the previous hook. Shared with the
/// telemetry soak, which injects the same panics.
pub(crate) fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("(fault plan)"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Runs all four phases.
///
/// # Errors
///
/// Any hang, unanswered or doubly-answered request, counter drift, or
/// non-reproducible fault schedule.
pub fn soak(threads: usize) -> Result<ChaosSoak, String> {
    // Counter assertions need the probe layer on regardless of the
    // environment.
    sram_probe::set_level(sram_probe::Level::Summary);
    silence_injected_panics();

    // Phase 1: bit-identical replay of a fractional-probability rule.
    let replay_plan =
        FaultPlan::new(0xC0FF_EE00).rule(FaultRule::sometimes("spice.nonconverge", 0.37));
    let mut first = ActiveSet::new(&replay_plan);
    let mut second = ActiveSet::new(&replay_plan);
    let fires_a: Vec<bool> = (0..10_000)
        .map(|_| first.should_fire("spice.nonconverge"))
        .collect();
    let fires_b: Vec<bool> = (0..10_000)
        .map(|_| second.should_fire("spice.nonconverge"))
        .collect();
    let replay_identical = fires_a == fires_b && first.injected_total() > 0;

    // Phase 2: the soak proper, under the fixed plan.
    let panics_before = counter("serve.worker.panics");
    let recovered_before = counter("serve.retry.recovered");
    let injected_before = counter("faults.injected");
    sram_faults::install(&soak_plan());
    let round_one = match soak_round(threads) {
        Ok(tally) => tally,
        Err(e) => {
            sram_faults::uninstall();
            return Err(e);
        }
    };
    let counts = sram_faults::counts();
    let injected_registry = sram_faults::injected_total();
    let worker_panics = counter("serve.worker.panics") - panics_before;
    let retry_recovered = counter("serve.retry.recovered") - recovered_before;
    let injected_probe = counter("faults.injected") - injected_before;

    // Phase 3: a fresh install of the same plan must reproduce the
    // per-point fire counts exactly.
    sram_faults::install(&soak_plan());
    let round_two = match soak_round(threads) {
        Ok(tally) => tally,
        Err(e) => {
            sram_faults::uninstall();
            return Err(e);
        }
    };
    let counts_reproduced = sram_faults::counts() == counts && counts == expected_counts();
    sram_faults::uninstall();
    if round_two.answered != CLIENTS * REQUESTS_PER_CLIENT {
        return Err(format!(
            "round two answered {} of {} requests",
            round_two.answered,
            CLIENTS * REQUESTS_PER_CLIENT
        ));
    }

    // Phase 4: deadline-bounded optimize. The token is already expired,
    // so the search must return the typed cancellation at its first
    // slice boundary instead of completing the sweep.
    let framework = CoOptimizationFramework::paper_mode()
        .with_space(DesignSpace::coarse())
        .with_threads(threads);
    let cell = framework
        .characterize_cell(VtFlavor::Hvt, Method::M2)
        .map_err(|e| format!("characterize: {e}"))?;
    let token = CancelToken::with_deadline(Instant::now());
    let started = Instant::now();
    let outcome = framework.optimize_with_cell_cancel(
        &cell,
        Capacity::from_bytes(4096),
        VtFlavor::Hvt,
        Method::M2,
        &EnergyDelayProduct,
        &token,
    );
    let deadline_elapsed = started.elapsed();
    let deadline_typed = matches!(
        &outcome,
        Err(e) if e.cancel_reason() == Some(CancelReason::Deadline)
    );

    Ok(ChaosSoak {
        replay_identical,
        requests: CLIENTS * REQUESTS_PER_CLIENT,
        answered: round_one.answered,
        internal_replies: round_one.internal,
        busy_replies: round_one.busy,
        reconnects: round_one.reconnects,
        worker_panics,
        retry_recovered,
        injected_probe,
        injected_registry,
        counts,
        counts_reproduced,
        deadline_typed,
        deadline_elapsed,
    })
}

/// Formats the chaos-soak report from a finished [`ChaosSoak`],
/// enforcing every invariant.
///
/// # Errors
///
/// Any invariant violation: replay divergence, unanswered requests, no
/// injected panic, no retry recovery, probe/registry drift, a
/// non-reproducible schedule, or an unbounded deadline cancellation.
pub fn report(c: &ChaosSoak) -> Result<String, String> {
    let mut out = String::from(
        "Chaos soak (sram-faults): deterministic injection under multi-client load\n\n",
    );
    out.push_str(&format!(
        "  replay:   10,000 seeded draws, two independent sets: {}\n",
        if c.replay_identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    ));
    out.push_str(&format!(
        "  soak:     {} requests over {CLIENTS} clients -> {} answered exactly once\n",
        c.requests, c.answered
    ));
    out.push_str(&format!(
        "            {} internal replies (worker panics isolated), {} busy, {} reconnects\n",
        c.internal_replies, c.busy_replies, c.reconnects
    ));
    out.push_str(&format!(
        "  faults:   injected {} (probe) / {} (registry); panics {}, retries recovered {}\n",
        c.injected_probe, c.injected_registry, c.worker_panics, c.retry_recovered
    ));
    let count_list: Vec<String> = c
        .counts
        .iter()
        .map(|(point, fires)| format!("{point}={fires}"))
        .collect();
    out.push_str(&format!(
        "            per-point fires: {} — second run {}\n",
        count_list.join(", "),
        if c.counts_reproduced {
            "identical"
        } else {
            "DRIFTED"
        }
    ));
    out.push_str(&format!(
        "  deadline: expired-token optimize -> {} in {:.1} ms\n",
        if c.deadline_typed {
            "typed deadline_exceeded"
        } else {
            "WRONG OUTCOME"
        },
        c.deadline_elapsed.as_secs_f64() * 1e3
    ));

    if !c.replay_identical {
        return Err("seeded replay diverged".to_owned());
    }
    if c.answered != c.requests {
        return Err(format!(
            "{} of {} requests answered",
            c.answered, c.requests
        ));
    }
    if c.worker_panics < 1 {
        return Err("no worker panic was injected".to_owned());
    }
    if c.retry_recovered < 1 {
        return Err("bounded retry never recovered".to_owned());
    }
    if c.injected_probe != c.injected_registry {
        return Err(format!(
            "probe counter drift: probe {} vs registry {}",
            c.injected_probe, c.injected_registry
        ));
    }
    if !c.counts_reproduced {
        return Err("fault schedule was not reproducible".to_owned());
    }
    if !c.deadline_typed || c.deadline_elapsed > Duration::from_millis(250) {
        return Err(format!(
            "deadline cancellation broken: typed={}, elapsed={:?}",
            c.deadline_typed, c.deadline_elapsed
        ));
    }
    Ok(out)
}

/// Runs all four phases and renders the invariant-checked report.
///
/// # Errors
///
/// Propagates [`soak`] failures and [`report`] invariant violations.
pub fn run(threads: usize) -> Result<String, String> {
    report(&soak(threads)?)
}

// The soak itself installs a process-global fault plan, so its tests
// live in `tests/chaos_soak.rs` (their own process) instead of racing
// the other unit tests in this binary. Only global-free pieces are
// tested here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_replay_is_bit_identical_without_touching_globals() {
        let plan =
            FaultPlan::new(0xC0FF_EE00).rule(FaultRule::sometimes("spice.nonconverge", 0.37));
        let mut first = ActiveSet::new(&plan);
        let mut second = ActiveSet::new(&plan);
        for draw in 0..10_000 {
            assert_eq!(
                first.should_fire("spice.nonconverge"),
                second.should_fire("spice.nonconverge"),
                "diverged at draw {draw}"
            );
        }
        assert!(first.injected_total() > 0, "p=0.37 must fire sometimes");
        assert!(first.injected_total() < 10_000, "and must not always fire");
    }

    #[test]
    fn soak_plan_caps_sum_to_the_expected_injection_total() {
        let total: u64 = expected_counts().iter().map(|(_, fires)| fires).sum();
        assert_eq!(total, 6, "2 nan + 1 slow + 2 panic + 1 drop");
        let mut set = ActiveSet::new(&soak_plan());
        for _ in 0..1_000 {
            for (point, _) in expected_counts() {
                set.decide(&point);
            }
        }
        assert_eq!(set.counts(), expected_counts(), "caps bound every point");
        assert_eq!(set.injected_total(), total);
    }

    fn healthy_outcome() -> ChaosSoak {
        ChaosSoak {
            replay_identical: true,
            requests: 24,
            answered: 24,
            internal_replies: 2,
            busy_replies: 0,
            reconnects: 1,
            worker_panics: 2,
            retry_recovered: 1,
            injected_probe: 6,
            injected_registry: 6,
            counts: expected_counts(),
            counts_reproduced: true,
            deadline_typed: true,
            deadline_elapsed: Duration::from_millis(3),
        }
    }

    #[test]
    fn report_names_the_invariants() {
        let text = report(&healthy_outcome()).expect("healthy outcome renders");
        assert!(text.contains("bit-identical"));
        assert!(text.contains("answered exactly once"));
        assert!(text.contains("typed deadline_exceeded"));
        assert!(text.contains("second run identical"));
    }

    type Sabotage = fn(&mut ChaosSoak);

    #[test]
    fn report_rejects_each_broken_invariant() {
        let broken: [(&str, Sabotage); 5] = [
            ("replay", |c| c.replay_identical = false),
            ("answered", |c| c.answered = 23),
            ("drift", |c| c.injected_probe = 5),
            ("schedule", |c| c.counts_reproduced = false),
            ("deadline", |c| c.deadline_typed = false),
        ];
        for (label, sabotage) in broken {
            let mut c = healthy_outcome();
            sabotage(&mut c);
            assert!(report(&c).is_err(), "{label} violation must be fatal");
        }
    }
}
