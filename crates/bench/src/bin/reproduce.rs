//! Regenerates the figures and tables of the paper's evaluation.
//!
//! Run `reproduce --help` for the experiment list — it is generated
//! from [`sram_bench::cli::EXPERIMENTS`], the same table the runner
//! executes, so it cannot drift from the implementation.
//!
//! With `SRAM_PROBE=1|2` (or `--probe-json <path>`, which force-enables
//! collection) the run ends with a per-experiment wall-clock and
//! instrumentation-counter footer; `--probe-json` additionally writes
//! the collected metrics as JSON.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use sram_bench::cli::{self, Selection};
use sram_probe::Level;

fn main() -> ExitCode {
    let mut which: Option<String> = None;
    let mut probe_json: Option<std::path::PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", cli::usage());
                return ExitCode::SUCCESS;
            }
            "--probe-json" => {
                let Some(path) = args.next() else {
                    eprintln!("--probe-json requires a path argument");
                    return ExitCode::FAILURE;
                };
                probe_json = Some(path.into());
            }
            name if which.is_none() && !name.starts_with('-') => {
                which = Some(name.to_owned());
            }
            other => {
                eprintln!("unexpected argument `{other}`\n");
                eprint!("{}", cli::usage());
                return ExitCode::FAILURE;
            }
        }
    }
    let which = which.unwrap_or_else(|| "all".to_owned());

    // --probe-json must collect even when SRAM_PROBE is unset.
    if probe_json.is_some() && !sram_probe::enabled(Level::Summary) {
        sram_probe::set_level(Level::Summary);
    }
    let probing = sram_probe::enabled(Level::Summary);

    let Selection::Run { chosen, skipped } = cli::select(&which) else {
        eprintln!("unknown experiment `{which}`\n");
        eprint!("{}", cli::usage());
        return ExitCode::FAILURE;
    };

    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let baseline = sram_probe::snapshot();
    let mut timings: Vec<(&str, Duration)> = Vec::with_capacity(chosen.len());
    for experiment in &chosen {
        println!(
            "==================== {} ====================",
            experiment.name
        );
        let started = Instant::now();
        match (experiment.run)(threads) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{} failed: {e}", experiment.name);
                return ExitCode::FAILURE;
            }
        }
        timings.push((experiment.name, started.elapsed()));
    }

    if !skipped.is_empty() {
        let names: Vec<&str> = skipped.iter().map(|e| e.name).collect();
        println!(
            "note: `all` skipped opt-in experiment(s): {} — run them explicitly by name",
            names.join(", ")
        );
    }

    if probing {
        println!("==================== probe summary ====================");
        let name_width = timings.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        println!("wall clock per experiment:");
        for (name, elapsed) in &timings {
            println!("  {name:<name_width$}  {elapsed:>10.2?}");
        }
        print!("{}", sram_probe::snapshot().diff(&baseline).render_table());
    }

    if let Some(path) = probe_json {
        let json = sram_probe::snapshot().diff(&baseline).to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write probe JSON to {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("probe metrics written to {}", path.display());
    }
    ExitCode::SUCCESS
}
