//! Regenerates every figure and table of the paper's evaluation.
//!
//! ```text
//! reproduce [experiment]
//!
//! experiments:
//!   fig2      HSNM + leakage vs Vdd (simulated)
//!   fig3      read-assist sweeps (simulated)
//!   fig5      write-assist sweeps (simulated)
//!   table4    optimal design parameters (paper-mode optimizer)
//!   fig7      delay/energy/EDP vs capacity + BL decomposition
//!   readfit   read-current power-law regression
//!   yield     mu - k*sigma statistical constraint (Monte Carlo)
//!   ablation  rail-pinning, Pareto, heuristic, accounting ablations
//!   extensions banking, drowsy standby, derated optimization
//!   all       everything above (default)
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    type Runner = Box<dyn Fn() -> Result<String, String>>;
    let experiments: Vec<(&str, Runner)> = vec![
        (
            "fig2",
            Box::new(|| sram_bench::fig2::run().map_err(|e| e.to_string())),
        ),
        (
            "fig3",
            Box::new(|| sram_bench::fig3::run().map_err(|e| e.to_string())),
        ),
        (
            "fig5",
            Box::new(|| sram_bench::fig5::run().map_err(|e| e.to_string())),
        ),
        (
            "table4",
            Box::new(move || sram_bench::table4::run(threads).map_err(|e| e.to_string())),
        ),
        (
            "fig7",
            Box::new(move || sram_bench::fig7::run(threads).map_err(|e| e.to_string())),
        ),
        (
            "readfit",
            Box::new(|| sram_bench::readfit::run().map_err(|e| e.to_string())),
        ),
        (
            "yield",
            Box::new(|| sram_bench::yieldk::run(60).map_err(|e| e.to_string())),
        ),
        (
            "ablation",
            Box::new(|| sram_bench::ablation::run().map_err(|e| e.to_string())),
        ),
        (
            "extensions",
            Box::new(|| sram_bench::extensions::run().map_err(|e| e.to_string())),
        ),
        (
            "rails-sim",
            Box::new(|| {
                sram_bench::extensions::simulated_rail_ablation().map_err(|e| e.to_string())
            }),
        ),
    ];

    let selected: Vec<_> = experiments
        .iter()
        .filter(|(name, _)| (which == "all" && *name != "rails-sim") || which == *name)
        .collect();
    if selected.is_empty() {
        eprintln!("unknown experiment `{which}`");
        eprintln!(
            "available: all, {}",
            experiments
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    }

    for (name, runner) in selected {
        println!("==================== {name} ====================");
        match runner() {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("{name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
