//! `serve-bench`: exercises the `sram-serve` query server end to end —
//! batch coalescing, the content-addressed result cache, the TCP
//! transport, and graceful shutdown — and reports the measured
//! cache speedup.
//!
//! Six phases:
//!
//! 1. **batch** — a batch of same-technology queries through the
//!    in-process API; the engine must perform exactly one cell
//!    characterization for the whole batch.
//! 2. **cross-batch** — a *second* batch of new queries on the same
//!    technology; the characterization count must not move and every
//!    member must be counted as cross-batch coalesced.
//! 3. **cache** — the same optimization twice, timed; the repeat must
//!    be served from the cache with a byte-identical result payload.
//! 4. **tcp** — a real `std::net` round trip: start a server on an
//!    ephemeral port, query it, confirm the reply matches the
//!    in-process result, shut down gracefully.
//! 5. **trace** — a traced optimize through a fresh engine in
//!    *full-simulation* mode (the paper model's analytic
//!    characterization never enters the spice or cell layers); the
//!    captured events must export well-formed Chrome JSON (written to
//!    `$SRAM_TRACE_OUT` when set) and the flame summary must name
//!    spans from the spice, cell, core, and serve layers.
//! 6. **yield** — a `yield-check` op against the batch engine; the op
//!    always enters the cell layer's Monte Carlo engine, so this is
//!    where the `cell.*` observability probes earn their assertion
//!    site: the run must register cell characterizations (counted and
//!    timed) plus one Monte Carlo run covering every requested sample.

use std::sync::Arc;
use std::time::Instant;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, ServeError, Server, ServerConfig};

/// Structured outcome of the serve bench (consumed by the integration
/// tests; the text report is built from it).
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Queries in the batch phase.
    pub batch_size: usize,
    /// Cell characterizations the batch performed (must be 1).
    pub characterizations: u64,
    /// Queries that shared a characterization pass (must be
    /// `batch_size - 1`).
    pub coalesced: u64,
    /// Queries in the second (cross-batch) phase.
    pub cross_batch_size: usize,
    /// Queries that reused a LUT characterized by an earlier batch
    /// (must equal `cross_batch_size`).
    pub cross_coalesced: u64,
    /// Wall time of the cold (uncached) optimization, nanoseconds.
    pub cold_ns: u128,
    /// Wall time of the repeated (cached) query, nanoseconds.
    pub warm_ns: u128,
    /// `cold_ns / warm_ns`.
    pub speedup: f64,
    /// Whether the cached result payload was byte-identical.
    pub identical_payload: bool,
    /// Whether the TCP round trip returned the same payload as the
    /// in-process API.
    pub tcp_consistent: bool,
    /// Cache hits observed by the engine across all phases.
    pub cache_hits: u64,
    /// Cache misses observed by the engine across all phases.
    pub cache_misses: u64,
    /// Cell characterizations the run added to the `cell.*` probe
    /// plane (delta of `cell.characterizations`; the traced
    /// full-simulation phase and the Monte Carlo phase both pay some).
    pub cell_characterizations: u64,
    /// Timed characterization samples added to the
    /// `cell.characterize_ns` histogram (delta of its count).
    pub cell_characterize_ns_samples: u64,
    /// Monte Carlo runs the yield phase added (delta of
    /// `cell.mc_runs`).
    pub mc_runs: u64,
    /// Monte Carlo samples the yield phase added (delta of
    /// `cell.mc_samples`; must cover [`YIELD_SAMPLES`]).
    pub mc_samples: u64,
    /// Did the yield-check reply carry a design plus a yield analysis?
    pub yield_ok: bool,
    /// Spans captured by the traced run.
    pub trace_spans: usize,
    /// Did the Chrome export validate (parse + B/E pairing)?
    pub trace_chrome_valid: bool,
    /// Top-of-flame span names, one per instrumented layer.
    pub trace_layers_ok: bool,
}

/// Monte Carlo samples the yield phase requests. Small on purpose:
/// the phase asserts probe wiring, not statistical power (the `yield`
/// experiment owns the real μ−kσ study).
pub const YIELD_SAMPLES: u64 = 64;

fn engine(threads: usize) -> Engine {
    Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    )
}

fn request(line: &str) -> Result<Request, ServeError> {
    Request::from_line(line)
}

/// Reads a global probe counter registered by another crate (the
/// bench asserts cell-layer metrics it does not own).
fn probe_counter(name: &'static str) -> u64 {
    sram_probe::counter(name).get()
}

/// Sample count of a global probe histogram registered elsewhere.
fn probe_histogram_count(name: &'static str) -> u64 {
    sram_probe::histogram(name).count()
}

fn result_payload(response: &Json) -> Option<String> {
    response.get("result").map(Json::render)
}

/// Runs all six phases.
///
/// # Errors
///
/// Propagates query, transport, and internal-consistency failures.
pub fn bench(threads: usize) -> Result<ServeBench, ServeError> {
    // The cell.* probe assertions below read summary-level counters, so
    // the bench turns collection on when the environment hasn't.
    if !sram_probe::enabled(sram_probe::Level::Summary) {
        sram_probe::set_level(sram_probe::Level::Summary);
    }
    let cell_chars_before = probe_counter("cell.characterizations");
    let cell_char_ns_before = probe_histogram_count("cell.characterize_ns");
    let mc_runs_before = probe_counter("cell.mc_runs");
    let mc_samples_before = probe_counter("cell.mc_samples");

    let engine = Arc::new(engine(threads));

    // Phase 1: batch coalescing. Same technology, three capacities.
    let batch: Vec<Request> = [128u64, 256, 1024]
        .iter()
        .map(|bytes| {
            request(&format!(
                r#"{{"op":"optimize","capacity_bytes":{bytes},"flavor":"hvt","method":"m2"}}"#
            ))
        })
        .collect::<Result<_, _>>()?;
    let responses = engine.handle_batch(&batch);
    for response in &responses {
        if response.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(ServeError::Remote(format!(
                "batch query failed: {}",
                response.render()
            )));
        }
    }
    // Snapshot the within-batch counters here: the cross batch below
    // coalesces internally too and would inflate `coalesced`.
    let characterizations = engine.characterizations();
    let coalesced = engine.coalesced();

    // Phase 1b: a later batch of *new* queries on the same technology
    // must ride on the LUT the first batch already paid for.
    let cross_batch: Vec<Request> = [512u64, 2048]
        .iter()
        .map(|bytes| {
            request(&format!(
                r#"{{"op":"optimize","capacity_bytes":{bytes},"flavor":"hvt","method":"m2"}}"#
            ))
        })
        .collect::<Result<_, _>>()?;
    let cross_responses = engine.handle_batch(&cross_batch);
    for response in &cross_responses {
        if response.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(ServeError::Remote(format!(
                "cross-batch query failed: {}",
                response.render()
            )));
        }
    }
    // Snapshot cross-batch reuse here: the cache and trace phases
    // below issue further queries that keep moving the counters.
    let cross_coalesced = engine.cross_coalesced();
    if engine.characterizations() != characterizations {
        return Err(ServeError::Remote(format!(
            "cross batch re-characterized: {} -> {}",
            characterizations,
            engine.characterizations()
        )));
    }

    // Phase 2: cold vs. cached on a fresh capacity.
    let probe = request(r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#)?;
    let cold_started = Instant::now();
    let cold = engine.handle(&probe);
    let cold_ns = cold_started.elapsed().as_nanos();
    let warm_started = Instant::now();
    let warm = engine.handle(&probe);
    let warm_ns = warm_started.elapsed().as_nanos().max(1);
    let identical_payload = result_payload(&cold).is_some()
        && result_payload(&cold) == result_payload(&warm)
        && warm.get("cached").and_then(Json::as_bool) == Some(true);

    // Phase 3: TCP round trip against the same engine + graceful stop.
    let server = Server::start(Arc::clone(&engine), ServerConfig::default())?;
    let mut client = Client::connect(server.local_addr())?;
    let remote = client.call(&probe)?;
    let tcp_consistent = remote.get("cached").and_then(Json::as_bool) == Some(true)
        && result_payload(&remote) == result_payload(&cold);
    drop(client);
    server.shutdown();

    // Phase 5: trace an optimize through a fresh full-simulation
    // engine, so the capture holds spans from all four layers (the
    // device-equation LUT pass drives spice and cell; the search drives
    // coopt; the engine itself contributes the serve spans). The
    // paper-model engine above never touches the spice or cell layers.
    sram_probe::trace::clear();
    let sim_engine = Engine::new(
        CoOptimizationFramework::simulated_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    );
    let traced_request = request(
        r#"{"op":"optimize","capacity_bytes":1024,"flavor":"lvt","method":"m1","trace":true}"#,
    )?;
    let traced = sim_engine.handle(&traced_request);
    if traced.get("status").and_then(Json::as_str) != Some("ok") || traced.get("trace").is_none() {
        return Err(ServeError::Remote(
            "traced request did not return a span tree".into(),
        ));
    }
    let events = sram_probe::trace::capture();
    let trace_spans = events
        .iter()
        .filter(|e| e.phase != sram_probe::trace::Phase::End)
        .count();
    let chrome = sram_probe::trace::chrome_trace_json(&events);
    let trace_chrome_valid = crate::trajectory::chrome_export_is_well_formed(&chrome);
    let flame = sram_probe::trace::flame_summary(&events, 16);
    let trace_layers_ok = ["spice.", "cell.", "coopt.", "serve."]
        .iter()
        .all(|layer| flame.contains(layer));
    if let Ok(path) = std::env::var("SRAM_TRACE_OUT") {
        if !path.is_empty() {
            std::fs::write(&path, &chrome)
                .map_err(|e| ServeError::Remote(format!("writing {path}: {e}")))?;
        }
    }

    // Phase 6: a yield-check against the batch engine. Unlike the
    // paper-mode optimize (which never leaves the analytic model), the
    // yield op always drops into the cell layer's Monte Carlo engine,
    // making this the natural assertion site for the cell.* probes.
    // LVT on purpose: the HVT optima pin rails aggressive enough that
    // the perturbed Monte Carlo cells stop converging in DC analysis.
    let yield_request = request(&format!(
        r#"{{"op":"yield-check","capacity_bytes":1024,"flavor":"lvt","method":"m1","samples":{YIELD_SAMPLES}}}"#
    ))?;
    let yielded = engine.handle(&yield_request);
    let yield_ok = yielded.get("status").and_then(Json::as_str) == Some("ok")
        && yielded
            .get("result")
            .is_some_and(|r| r.get("design").is_some() && r.get("yield").is_some());
    if !yield_ok {
        return Err(ServeError::Remote(format!(
            "yield-check failed: {}",
            yielded.render()
        )));
    }
    let cell_characterizations = probe_counter("cell.characterizations") - cell_chars_before;
    let cell_characterize_ns_samples =
        probe_histogram_count("cell.characterize_ns") - cell_char_ns_before;
    let mc_runs = probe_counter("cell.mc_runs") - mc_runs_before;
    let mc_samples = probe_counter("cell.mc_samples") - mc_samples_before;

    let counters = engine.cache_counters();
    Ok(ServeBench {
        batch_size: batch.len(),
        characterizations,
        coalesced,
        cross_batch_size: cross_batch.len(),
        cross_coalesced,
        cold_ns,
        warm_ns,
        speedup: cold_ns as f64 / warm_ns as f64,
        identical_payload,
        tcp_consistent,
        cache_hits: counters.hits,
        cache_misses: counters.misses,
        cell_characterizations,
        cell_characterize_ns_samples,
        mc_runs,
        mc_samples,
        yield_ok,
        trace_spans,
        trace_chrome_valid,
        trace_layers_ok,
    })
}

/// Formats the serve bench report.
///
/// # Errors
///
/// Propagates [`bench`] failures.
pub fn run(threads: usize) -> Result<String, ServeError> {
    let b = bench(threads)?;
    let mut out = String::from("Query server (sram-serve): batching + content-addressed cache\n\n");
    out.push_str(&format!(
        "  batch:  {} same-technology queries -> {} characterization pass(es), {} coalesced\n",
        b.batch_size, b.characterizations, b.coalesced
    ));
    out.push_str(&format!(
        "          {} later queries reused the earlier batch's LUT ({} cross-batch coalesced)\n",
        b.cross_batch_size, b.cross_coalesced
    ));
    out.push_str(&format!(
        "  cache:  cold optimize {:.3} ms -> cached repeat {:.1} us ({:.0}x speedup)\n",
        b.cold_ns as f64 / 1e6,
        b.warm_ns as f64 / 1e3,
        b.speedup
    ));
    out.push_str(&format!(
        "          identical payload: {}; hits {} / misses {}\n",
        if b.identical_payload { "yes" } else { "NO" },
        b.cache_hits,
        b.cache_misses
    ));
    out.push_str(&format!(
        "  tcp:    round trip consistent with in-process API: {}; graceful shutdown: yes\n",
        if b.tcp_consistent { "yes" } else { "NO" }
    ));
    out.push_str(&format!(
        "  trace:  {} spans captured; Chrome export {}; layers {}\n",
        b.trace_spans,
        if b.trace_chrome_valid {
            "well-formed"
        } else {
            "INVALID"
        },
        if b.trace_layers_ok {
            "spice+cell+coopt+serve"
        } else {
            "MISSING"
        }
    ));
    out.push_str(&format!(
        "  yield:  {} Monte Carlo run(s), {} samples; {} cell characterizations ({} timed)\n",
        b.mc_runs, b.mc_samples, b.cell_characterizations, b.cell_characterize_ns_samples
    ));
    if b.characterizations != 1 || b.coalesced != b.batch_size as u64 - 1 {
        return Err(ServeError::Remote(format!(
            "batch coalescing broken: {} characterizations, {} coalesced for {} queries",
            b.characterizations, b.coalesced, b.batch_size
        )));
    }
    if b.cross_coalesced != b.cross_batch_size as u64 {
        return Err(ServeError::Remote(format!(
            "cross-batch coalescing broken: {} cross-coalesced for {} queries",
            b.cross_coalesced, b.cross_batch_size
        )));
    }
    if !b.identical_payload || !b.tcp_consistent {
        return Err(ServeError::Remote(
            "cached/TCP results diverged from the cold result".into(),
        ));
    }
    if !b.trace_chrome_valid || !b.trace_layers_ok {
        return Err(ServeError::Remote(
            "trace capture failed validation (export or layer coverage)".into(),
        ));
    }
    if b.mc_runs < 1 || b.mc_samples < YIELD_SAMPLES {
        return Err(ServeError::Remote(format!(
            "cell Monte Carlo probes did not move: {} runs, {} samples (wanted >= 1 run, >= {} samples)",
            b.mc_runs, b.mc_samples, YIELD_SAMPLES
        )));
    }
    if b.cell_characterizations < 1 || b.cell_characterize_ns_samples < 1 {
        return Err(ServeError::Remote(format!(
            "cell characterization probes did not move: {} counted, {} timed",
            b.cell_characterizations, b.cell_characterize_ns_samples
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_coalesces_and_caches() {
        let b = bench(2).expect("bench runs");
        assert_eq!(b.characterizations, 1, "one LUT pass for the whole batch");
        assert_eq!(b.coalesced, b.batch_size as u64 - 1);
        assert_eq!(
            b.cross_coalesced, b.cross_batch_size as u64,
            "every cross-batch query must reuse the earlier LUT"
        );
        assert!(b.identical_payload, "cached payload must be identical");
        assert!(b.tcp_consistent, "TCP reply must match in-process reply");
        assert!(b.cache_hits >= 2, "warm repeat + TCP repeat are hits");
        assert!(b.trace_spans > 0, "traced run must record spans");
        assert!(b.trace_chrome_valid, "Chrome export must validate");
        assert!(b.trace_layers_ok, "flame must name all four layers");
        assert!(b.yield_ok, "yield-check must return design + yield");
        assert!(
            b.mc_runs >= 1,
            "yield phase must register a Monte Carlo run"
        );
        assert!(
            b.mc_samples >= YIELD_SAMPLES,
            "every requested Monte Carlo sample must be counted: {} < {}",
            b.mc_samples,
            YIELD_SAMPLES
        );
        assert!(
            b.cell_characterizations >= 1,
            "simulation + Monte Carlo phases must count cell characterizations"
        );
        assert!(
            b.cell_characterize_ns_samples >= 1,
            "cell characterizations must be timed into cell.characterize_ns"
        );
    }

    #[test]
    fn report_mentions_the_headline_numbers() {
        let text = run(2).expect("report renders");
        assert!(text.contains("characterization pass(es)"));
        assert!(text.contains("speedup"));
        assert!(text.contains("graceful shutdown: yes"));
        assert!(text.contains("Monte Carlo run(s)"));
    }
}
