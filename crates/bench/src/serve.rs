//! `serve-bench`: exercises the `sram-serve` query server end to end —
//! batch coalescing, the content-addressed result cache, the TCP
//! transport, and graceful shutdown — and reports the measured
//! cache speedup.
//!
//! Three phases:
//!
//! 1. **batch** — a batch of same-technology queries through the
//!    in-process API; the engine must perform exactly one cell
//!    characterization for the whole batch.
//! 2. **cache** — the same optimization twice, timed; the repeat must
//!    be served from the cache with a byte-identical result payload.
//! 3. **tcp** — a real `std::net` round trip: start a server on an
//!    ephemeral port, query it, confirm the reply matches the
//!    in-process result, shut down gracefully.

use std::sync::Arc;
use std::time::Instant;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, ServeError, Server, ServerConfig};

/// Structured outcome of the serve bench (consumed by the integration
/// tests; the text report is built from it).
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// Queries in the batch phase.
    pub batch_size: usize,
    /// Cell characterizations the batch performed (must be 1).
    pub characterizations: u64,
    /// Queries that shared a characterization pass (must be
    /// `batch_size - 1`).
    pub coalesced: u64,
    /// Wall time of the cold (uncached) optimization, nanoseconds.
    pub cold_ns: u128,
    /// Wall time of the repeated (cached) query, nanoseconds.
    pub warm_ns: u128,
    /// `cold_ns / warm_ns`.
    pub speedup: f64,
    /// Whether the cached result payload was byte-identical.
    pub identical_payload: bool,
    /// Whether the TCP round trip returned the same payload as the
    /// in-process API.
    pub tcp_consistent: bool,
    /// Cache hits observed by the engine across all phases.
    pub cache_hits: u64,
    /// Cache misses observed by the engine across all phases.
    pub cache_misses: u64,
}

fn engine(threads: usize) -> Engine {
    Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    )
}

fn request(line: &str) -> Result<Request, ServeError> {
    Request::from_line(line)
}

fn result_payload(response: &Json) -> Option<String> {
    response.get("result").map(Json::render)
}

/// Runs all three phases.
///
/// # Errors
///
/// Propagates query, transport, and internal-consistency failures.
pub fn bench(threads: usize) -> Result<ServeBench, ServeError> {
    let engine = Arc::new(engine(threads));

    // Phase 1: batch coalescing. Same technology, three capacities.
    let batch: Vec<Request> = [128u64, 256, 1024]
        .iter()
        .map(|bytes| {
            request(&format!(
                r#"{{"op":"optimize","capacity_bytes":{bytes},"flavor":"hvt","method":"m2"}}"#
            ))
        })
        .collect::<Result<_, _>>()?;
    let responses = engine.handle_batch(&batch);
    for response in &responses {
        if response.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(ServeError::Remote(format!(
                "batch query failed: {}",
                response.render()
            )));
        }
    }

    // Phase 2: cold vs. cached on a fresh capacity.
    let probe = request(r#"{"op":"optimize","capacity_bytes":4096,"flavor":"hvt","method":"m2"}"#)?;
    let cold_started = Instant::now();
    let cold = engine.handle(&probe);
    let cold_ns = cold_started.elapsed().as_nanos();
    let warm_started = Instant::now();
    let warm = engine.handle(&probe);
    let warm_ns = warm_started.elapsed().as_nanos().max(1);
    let identical_payload = result_payload(&cold).is_some()
        && result_payload(&cold) == result_payload(&warm)
        && warm.get("cached").and_then(Json::as_bool) == Some(true);

    // Phase 3: TCP round trip against the same engine + graceful stop.
    let server = Server::start(Arc::clone(&engine), ServerConfig::default())?;
    let mut client = Client::connect(server.local_addr())?;
    let remote = client.call(&probe)?;
    let tcp_consistent = remote.get("cached").and_then(Json::as_bool) == Some(true)
        && result_payload(&remote) == result_payload(&cold);
    drop(client);
    server.shutdown();

    let counters = engine.cache_counters();
    Ok(ServeBench {
        batch_size: batch.len(),
        characterizations: engine.characterizations(),
        coalesced: engine.coalesced(),
        cold_ns,
        warm_ns,
        speedup: cold_ns as f64 / warm_ns as f64,
        identical_payload,
        tcp_consistent,
        cache_hits: counters.hits,
        cache_misses: counters.misses,
    })
}

/// Formats the serve bench report.
///
/// # Errors
///
/// Propagates [`bench`] failures.
pub fn run(threads: usize) -> Result<String, ServeError> {
    let b = bench(threads)?;
    let mut out = String::from("Query server (sram-serve): batching + content-addressed cache\n\n");
    out.push_str(&format!(
        "  batch:  {} same-technology queries -> {} characterization pass(es), {} coalesced\n",
        b.batch_size, b.characterizations, b.coalesced
    ));
    out.push_str(&format!(
        "  cache:  cold optimize {:.3} ms -> cached repeat {:.1} us ({:.0}x speedup)\n",
        b.cold_ns as f64 / 1e6,
        b.warm_ns as f64 / 1e3,
        b.speedup
    ));
    out.push_str(&format!(
        "          identical payload: {}; hits {} / misses {}\n",
        if b.identical_payload { "yes" } else { "NO" },
        b.cache_hits,
        b.cache_misses
    ));
    out.push_str(&format!(
        "  tcp:    round trip consistent with in-process API: {}; graceful shutdown: yes\n",
        if b.tcp_consistent { "yes" } else { "NO" }
    ));
    if b.characterizations != 1 || b.coalesced != b.batch_size as u64 - 1 {
        return Err(ServeError::Remote(format!(
            "batch coalescing broken: {} characterizations, {} coalesced for {} queries",
            b.characterizations, b.coalesced, b.batch_size
        )));
    }
    if !b.identical_payload || !b.tcp_consistent {
        return Err(ServeError::Remote(
            "cached/TCP results diverged from the cold result".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_coalesces_and_caches() {
        let b = bench(2).expect("bench runs");
        assert_eq!(b.characterizations, 1, "one LUT pass for the whole batch");
        assert_eq!(b.coalesced, b.batch_size as u64 - 1);
        assert!(b.identical_payload, "cached payload must be identical");
        assert!(b.tcp_consistent, "TCP reply must match in-process reply");
        assert!(b.cache_hits >= 2, "warm repeat + TCP repeat are hits");
    }

    #[test]
    fn report_mentions_the_headline_numbers() {
        let text = run(2).expect("report renders");
        assert!(text.contains("characterization pass(es)"));
        assert!(text.contains("speedup"));
        assert!(text.contains("graceful shutdown: yes"));
    }
}
