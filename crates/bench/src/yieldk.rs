//! Extension A3: the paper's "accurate" statistical yield constraint
//! `min over margins of (μ − kσ) ≥ 0`, evaluated by Monte Carlo for
//! `k ∈ {1 … 6}` at the HVT-M2 operating point.

use crate::format_series;
use sram_cell::{
    AssistVoltages, CellCharacterizer, CellError, MonteCarloConfig, YieldAnalysis, YieldAnalyzer,
};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_units::Voltage;

/// Runs the Monte Carlo analysis at the HVT-M2 rails.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn analyze(library: &DeviceLibrary, samples: usize) -> Result<YieldAnalysis, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt);
    let bias = AssistVoltages::nominal(library.nominal_vdd())
        .with_vddc(Voltage::from_millivolts(550.0))
        .with_vssc(Voltage::from_millivolts(-240.0))
        .with_vwl(Voltage::from_millivolts(540.0));
    YieldAnalyzer::new(
        chr,
        MonteCarloConfig {
            samples,
            seed: 0xdac2016,
            vtc_points: 25,
        },
    )
    .run(&bias)
}

/// Formats the μ−kσ table for `k ∈ {1 … 6}`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run(samples: usize) -> Result<String, CellError> {
    let lib = DeviceLibrary::sevennm();
    let analysis = analyze(&lib, samples)?;
    let mut out = format!(
        "Monte Carlo yield at the HVT-M2 operating point ({} samples):\n\
         \n\
           HSNM: mu = {:.1} mV, sigma = {:.1} mV\n\
           RSNM: mu = {:.1} mV, sigma = {:.1} mV\n\
           WM:   mu = {:.1} mV, sigma = {:.1} mV\n\n",
        analysis.hsnm.samples,
        analysis.hsnm.mean.millivolts(),
        analysis.hsnm.sigma.millivolts(),
        analysis.rsnm.mean.millivolts(),
        analysis.rsnm.sigma.millivolts(),
        analysis.wm.mean.millivolts(),
        analysis.wm.sigma.millivolts(),
    );
    let rows: Vec<Vec<String>> = (1..=6)
        .map(|k| {
            let k = f64::from(k);
            vec![
                format!("{k:.0}"),
                format!("{:.1}", analysis.worst_statistical_margin(k).millivolts()),
                if analysis.passes(k) { "pass" } else { "FAIL" }.to_owned(),
            ]
        })
        .collect();
    out.push_str(&format_series(
        &["k", "min(mu - k*sigma)[mV]", "yield"],
        &rows,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistical_margin_decreases_with_k() {
        let lib = DeviceLibrary::sevennm();
        let analysis = analyze(&lib, 12).unwrap();
        let m1 = analysis.worst_statistical_margin(1.0);
        let m6 = analysis.worst_statistical_margin(6.0);
        assert!(m6 < m1);
        // At the assisted operating point the cell passes at least k = 1.
        assert!(analysis.passes(1.0), "mu - sigma < 0 looks wrong");
    }
}
