//! Figure 3: read-assist technique sweeps on the 6T-HVT cell.
//!
//! * (a) RSNM and read current of 6T-HVT normalized to 6T-LVT;
//! * (b) Vdd boost (`V_DDC`) sweep — RSNM rises, bitline delay flat;
//! * (c) negative Gnd (`V_SSC`) sweep — read current rises, bitline delay
//!   falls through the 6T-LVT-no-assist reference line;
//! * (d) wordline underdrive (`V_WL` during read) sweep — RSNM rises but
//!   bitline delay rises too (the rejected technique).
//!
//! Bitline delay assumes a 64-cell column, as the paper's caption states.

use crate::format_series;
use sram_cell::{AssistVoltages, CellCharacterizer, CellError, Sram6t, VtcHalf, VtcMode};
use sram_device::{DeviceLibrary, VtFlavor};
use sram_spice::{DcSolver, Waveform};
use sram_units::{Capacitance, Current, Time, Voltage};

/// Bitline capacitance of the caption's 64-cell column (cell height wire
/// plus one access drain per row; precharger loading omitted as in the
/// cell-level figures).
fn column_c_bl(library: &DeviceLibrary) -> Capacitance {
    let tech = sram_array::TechnologyParams::sevennm();
    let acc_drain = library.nfet(VtFlavor::Hvt).c_drain_per_fin;
    (tech.cell_height_cap() + acc_drain) * 64.0
}

/// Bitline delay `C_BL · ΔV_S / I_read` for a 64-cell column.
#[must_use]
pub fn bitline_delay(library: &DeviceLibrary, i_read: Current) -> Time {
    let delta_vs = Voltage::from_millivolts(120.0);
    column_c_bl(library) * delta_vs / i_read
}

/// One sample of an assist sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AssistPoint {
    /// Swept assist voltage.
    pub level: Voltage,
    /// Read SNM under this bias.
    pub rsnm: Voltage,
    /// Cell read current under this bias.
    pub i_read: Current,
    /// 64-cell-column bitline delay.
    pub bl_delay: Time,
}

fn sample(
    library: &DeviceLibrary,
    chr: &CellCharacterizer,
    bias: &AssistVoltages,
    level: Voltage,
) -> Result<AssistPoint, CellError> {
    let rsnm = match chr.read_snm(bias) {
        Ok(v) => v,
        Err(CellError::MeasurementFailed { .. }) => Voltage::ZERO,
        Err(e) => return Err(e),
    };
    let i_read = chr.read_current(bias)?;
    Ok(AssistPoint {
        level,
        rsnm,
        i_read,
        bl_delay: bitline_delay(library, i_read),
    })
}

/// Fig. 3(b): sweep `V_DDC` from 450 mV to 700 mV.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn vdd_boost_sweep(library: &DeviceLibrary) -> Result<Vec<AssistPoint>, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt).with_vtc_points(41);
    let vdd = library.nominal_vdd();
    (450..=700)
        .step_by(25)
        .map(|mv| {
            let vddc = Voltage::from_millivolts(f64::from(mv));
            let bias = AssistVoltages::nominal(vdd).with_vddc(vddc);
            sample(library, &chr, &bias, vddc)
        })
        .collect()
}

/// Fig. 3(c): sweep `V_SSC` from 0 to −240 mV (at the yield-minimum
/// `V_DDC` = 550 mV, the paper's Fig. 4 operating point).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn negative_gnd_sweep(library: &DeviceLibrary) -> Result<Vec<AssistPoint>, CellError> {
    let chr = CellCharacterizer::new(library, VtFlavor::Hvt).with_vtc_points(41);
    let vdd = library.nominal_vdd();
    (0..=8)
        .map(|k| {
            let vssc = Voltage::from_millivolts(-30.0 * f64::from(k));
            let bias = AssistVoltages::nominal(vdd)
                .with_vddc(Voltage::from_millivolts(550.0))
                .with_vssc(vssc);
            sample(library, &chr, &bias, vssc)
        })
        .collect()
}

/// Fig. 3(d): wordline underdrive — sweep the *read* wordline level.
///
/// The standard read circuit asserts the WL at `Vdd`; this sweep biases
/// it lower (or higher), requiring a custom read-current circuit.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn wl_underdrive_sweep(library: &DeviceLibrary) -> Result<Vec<AssistPoint>, CellError> {
    let vdd = library.nominal_vdd();
    let cell = Sram6t::new(library, VtFlavor::Hvt);
    let mut out = Vec::new();
    for mv in (250..=500).step_by(25) {
        let vwl_read = Voltage::from_millivolts(f64::from(mv));
        let bias = AssistVoltages::nominal(vdd);

        // RSNM with the read-mode access gate at vwl_read: reuse the VTC
        // circuit but override the WL source.
        let rsnm = {
            let mut curves = Vec::new();
            for half in [VtcHalf::Left, VtcHalf::Right] {
                let (mut ckt, _u, out_node) = cell.vtc_circuit(half, VtcMode::Read, &bias, vdd);
                ckt.set_source_voltage("VWL", vwl_read)
                    .map_err(CellError::Simulation)?;
                let points = sram_spice::DcSweep::new("VU", bias.vssc, bias.vddc, 41).run(&ckt)?;
                curves.push(sram_cell::Vtc::new(
                    points
                        .into_iter()
                        .map(|p| (p.value, p.solution.voltage(out_node)))
                        .collect(),
                )?);
            }
            match sram_cell::butterfly_snm(&curves[0], &curves[1]) {
                Ok(v) => v,
                Err(CellError::MeasurementFailed { .. }) => Voltage::ZERO,
                Err(e) => return Err(e),
            }
        };

        // Read current with the WL at vwl_read.
        let i_read = {
            let (mut ckt, nodes) = cell.read_circuit(&bias, vdd);
            ckt.set_source_waveform("VWL", Waveform::dc(vwl_read))
                .map_err(CellError::Simulation)?;
            let sol = DcSolver::new()
                .nodeset(nodes.q, Voltage::ZERO)
                .nodeset(nodes.qb, vdd)
                .solve(&ckt)
                .map_err(CellError::Simulation)?;
            Current::from_amps(
                -sol.source_current(&ckt, "VBL")
                    .map_err(CellError::Simulation)?
                    .amps(),
            )
        };

        out.push(AssistPoint {
            level: vwl_read,
            rsnm,
            i_read,
            bl_delay: bitline_delay(library, i_read),
        });
    }
    Ok(out)
}

/// Fig. 3(a): RSNM and read current of HVT normalized to LVT at the
/// nominal (no-assist) bias. Returns `(rsnm_ratio, i_read_ratio)`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn hvt_vs_lvt_ratios(library: &DeviceLibrary) -> Result<(f64, f64), CellError> {
    let vdd = library.nominal_vdd();
    let bias = AssistVoltages::nominal(vdd);
    let hvt = CellCharacterizer::new(library, VtFlavor::Hvt).with_vtc_points(41);
    let lvt = CellCharacterizer::new(library, VtFlavor::Lvt).with_vtc_points(41);
    let rsnm_ratio = hvt.read_snm(&bias)?.volts() / lvt.read_snm(&bias)?.volts();
    let iread_ratio = hvt.read_current(&bias)? / lvt.read_current(&bias)?;
    Ok((rsnm_ratio, iread_ratio))
}

fn format_points(title: &str, level_name: &str, pts: &[AssistPoint], delta: Voltage) -> String {
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.level.millivolts()),
                format!("{:.1}", p.rsnm.millivolts()),
                format!("{:.2}", p.i_read.microamps()),
                format!("{:.1}", p.bl_delay.picoseconds()),
                if p.rsnm >= delta { "yes" } else { "no" }.to_owned(),
            ]
        })
        .collect();
    format!(
        "{title}\n\n{}",
        format_series(
            &[
                level_name,
                "RSNM[mV]",
                "I_read[uA]",
                "BL delay[ps]",
                "meets delta"
            ],
            &rows
        )
    )
}

/// Runs all four panels and formats them.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run() -> Result<String, CellError> {
    let lib = DeviceLibrary::sevennm();
    let delta = lib.nominal_vdd() * 0.35;
    let (rs, ir) = hvt_vs_lvt_ratios(&lib)?;
    let mut out = format!(
        "Fig. 3(a) — 6T-HVT vs 6T-LVT at nominal bias:\n  RSNM ratio = {rs:.2} (paper: 1.9)\n  I_read ratio = {ir:.2} (paper: ~0.5)\n\n"
    );
    out.push_str(&format_points(
        "Fig. 3(b) — Vdd boost (V_DDC sweep)",
        "V_DDC[mV]",
        &vdd_boost_sweep(&lib)?,
        delta,
    ));
    out.push('\n');
    out.push_str(&format_points(
        "Fig. 3(c) — negative Gnd (V_SSC sweep at V_DDC = 550 mV)",
        "V_SSC[mV]",
        &negative_gnd_sweep(&lib)?,
        delta,
    ));
    out.push('\n');
    out.push_str(&format_points(
        "Fig. 3(d) — wordline underdrive (read V_WL sweep)",
        "V_WL[mV]",
        &wl_underdrive_sweep(&lib)?,
        delta,
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vdd_boost_raises_rsnm_without_slowing_the_bitline() {
        let lib = DeviceLibrary::sevennm();
        let pts = vdd_boost_sweep(&lib).unwrap();
        assert!(pts.last().unwrap().rsnm > pts[0].rsnm);
        // Bitline delay must not *increase* with the boost (Section 5:
        // V_DDC has "no impact on read delay" — in fact it helps slightly
        // since the access transistor sees more overdrive).
        assert!(pts.last().unwrap().bl_delay <= pts[0].bl_delay * 1.05);
    }

    #[test]
    fn negative_gnd_accelerates_the_bitline() {
        let lib = DeviceLibrary::sevennm();
        let pts = negative_gnd_sweep(&lib).unwrap();
        let gain = pts.last().unwrap().i_read / pts[0].i_read;
        assert!(gain > 2.0, "I_read gain = {gain:.2} (paper: 4.3x)");
        assert!(pts.last().unwrap().bl_delay < pts[0].bl_delay * 0.5);
    }

    #[test]
    fn wl_underdrive_trades_delay_for_margin() {
        let lib = DeviceLibrary::sevennm();
        let pts = wl_underdrive_sweep(&lib).unwrap();
        // Lower WL (earlier points) -> higher RSNM but slower bitline.
        let low = &pts[0]; // 250 mV
        let high = pts.last().unwrap(); // 500 mV
        assert!(low.rsnm > high.rsnm, "WLUD should raise RSNM");
        assert!(low.bl_delay > high.bl_delay, "WLUD should slow the read");
    }
}
