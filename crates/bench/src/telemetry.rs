//! `telemetry-soak`: opt-in observability experiment — mixed
//! multi-client TCP load against the query server with sampled tracing
//! on, verifying the windowed telemetry surface end to end.
//!
//! Three phases:
//!
//! 1. **sampling** — per-root trace sampling must be deterministic: the
//!    same seed and rate over the same root keys must accept the exact
//!    same subset twice, and the accepted fraction must sit near the
//!    configured rate (that proportionality is what makes sampling a
//!    ring-pressure control rather than a coin flip).
//! 2. **clean** — a warmed server answers a mixed load (optimize +
//!    stats, all traced) from several concurrent clients at sample rate
//!    [`SAMPLE_RATE`]; afterwards `metrics` over the wire must carry at
//!    least one closed window, the Prometheus text exposition and the
//!    JSON form must agree exactly on every latency quantile (they are
//!    rendered from one export — any drift is a bug), `health` must
//!    report `ok`, and `probe.trace.dropped` must stay at zero.
//! 3. **faulted** — the same load runs again under an injected fault
//!    plan (two worker panics, one connection drop); once the fault
//!    window closes, `health` must leave `ok`. A health surface that
//!    never degrades under injected faults is decoration, not
//!    monitoring.
//!
//! Hard failures: a missing window, any text-vs-JSON quantile drift, a
//! `health` verdict that ignores the fault plan, non-deterministic
//! sampling, or trace-ring drops under sampled load.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use sram_coopt::{CoOptimizationFramework, DesignSpace};
use sram_faults::{FaultPlan, FaultRule};
use sram_serve::{CacheConfig, Client, Engine, Json, Request, Server, ServerConfig};

/// Concurrent soak clients.
const CLIENTS: usize = 3;
/// Requests each client issues per round.
const REQUESTS_PER_CLIENT: usize = 8;
/// Resend budget per request (panics, busy rejections, and the
/// connection drop all trigger resends).
const MAX_ATTEMPTS: usize = 10;
/// Client-side reply timeout — the hang detector.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);
/// Per-root trace sample rate the soak drives load under.
pub const SAMPLE_RATE: f64 = 0.25;
/// Seed for the sampling-determinism phase (restored to the probe
/// default before the soak returns).
const SAMPLE_SEED: u64 = 0x7E1E_50AC;
/// Root keys drawn in the sampling-determinism phase.
const SAMPLE_KEYS: u64 = 4096;
/// Tolerance on the observed accept fraction. At 4096 draws the
/// binomial standard deviation of the fraction is ~0.007, so 0.05 is a
/// seven-sigma envelope — loose enough to never flake, tight enough to
/// catch a broken hash.
const SAMPLE_TOLERANCE: f64 = 0.05;

/// Capacities cycled through by the optimize load.
const CAPACITIES: [u64; 4] = [128, 512, 1024, 4096];

/// Structured outcome (consumed by the unit tests; the report is built
/// from it).
#[derive(Debug, Clone)]
pub struct TelemetrySoak {
    /// Phase 1: did two passes over the same keys accept the same set?
    pub sampling_deterministic: bool,
    /// Phase 1: observed accept fraction (target [`SAMPLE_RATE`]).
    pub sampled_fraction: f64,
    /// Requests issued per round across all clients.
    pub requests: usize,
    /// Clean-round requests answered `ok` exactly once.
    pub answered: usize,
    /// `health` verdict on the clean run (must be `ok`).
    pub clean_verdict: String,
    /// Closed windows reported by `metrics` (must be ≥ 1).
    pub windows: u64,
    /// Max |text − JSON| over the latency quantiles (must be 0).
    pub quantile_drift: f64,
    /// Quantiles present in BOTH expositions (must be 3).
    pub quantiles_compared: usize,
    /// `probe.trace.dropped` delta across the soak (must be 0).
    pub trace_drops: u64,
    /// Fault-round requests answered `ok` exactly once.
    pub fault_answered: usize,
    /// `health` verdict after the fault round (must not be `ok`).
    pub fault_verdict: String,
    /// Reasons attached to the fault-round verdict.
    pub fault_reasons: Vec<String>,
    /// Typed `internal` replies observed (isolated worker panics).
    pub internal_replies: usize,
    /// Client reconnects after the injected connection drop.
    pub reconnects: usize,
}

/// The fixed fault plan: every rule is `p = 1` with a cap, so the
/// injected totals are timing-independent.
fn soak_plan() -> FaultPlan {
    FaultPlan::new(0x7E1E_FA17)
        .rule(FaultRule::always("serve.worker_panic", 2))
        .rule(FaultRule::always("serve.conn_drop", 1))
}

fn engine(threads: usize) -> Arc<Engine> {
    Arc::new(Engine::new(
        CoOptimizationFramework::paper_mode()
            .with_space(DesignSpace::coarse())
            .with_threads(threads),
        CacheConfig::default(),
    ))
}

fn optimize_line(id: &str, capacity: u64) -> String {
    format!(
        r#"{{"id":"{id}","op":"optimize","capacity_bytes":{capacity},"flavor":"hvt","method":"m2","trace":true}}"#
    )
}

fn connect(addr: SocketAddr) -> Result<Client, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    client
        .set_timeout(Some(REPLY_TIMEOUT))
        .map_err(|e| format!("set_timeout: {e}"))?;
    Ok(client)
}

/// Per-client tally from one round.
#[derive(Debug, Default, Clone, Copy)]
struct ClientTally {
    answered: usize,
    internal: usize,
    reconnects: usize,
}

/// Drives one client's mixed (optimize + stats, all traced) schedule to
/// completion: resend on `internal` and `busy`, reconnect-and-resend on
/// a dropped connection, hard-fail on a timeout or an attempt-budget
/// blowout.
fn run_client(addr: SocketAddr, index: usize) -> Result<ClientTally, String> {
    let mut client = connect(addr)?;
    let mut tally = ClientTally::default();
    for r in 0..REQUESTS_PER_CLIENT {
        let id = format!("t{index}-r{r}");
        let line = if r % 3 == 2 {
            format!(r#"{{"id":"{id}","op":"stats","trace":true}}"#)
        } else {
            optimize_line(&id, CAPACITIES[(index + r) % CAPACITIES.len()])
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            if attempts > MAX_ATTEMPTS {
                return Err(format!(
                    "request {id} unanswered after {MAX_ATTEMPTS} attempts"
                ));
            }
            match client.call_line(&line) {
                Ok(reply) => match reply.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        if reply.get("id").and_then(Json::as_str) != Some(id.as_str()) {
                            return Err(format!(
                                "reply stream misaligned at {id}: {}",
                                reply.render()
                            ));
                        }
                        tally.answered += 1;
                        break;
                    }
                    Some("internal") => tally.internal += 1,
                    Some("busy") => std::thread::sleep(Duration::from_millis(20)),
                    other => {
                        return Err(format!(
                            "request {id}: unexpected status {other:?}: {}",
                            reply.render()
                        ))
                    }
                },
                Err(sram_serve::ServeError::Remote(_)) => {
                    // The injected connection drop: clean EOF, no reply.
                    tally.reconnects += 1;
                    client = connect(addr)?;
                }
                Err(sram_serve::ServeError::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(format!("request {id}: reply timed out — server hang"));
                }
                Err(e) => return Err(format!("request {id}: transport error: {e}")),
            }
        }
    }
    Ok(tally)
}

/// One round of concurrent clients against an already-running server.
fn load_round(addr: SocketAddr) -> Result<ClientTally, String> {
    let mut total = ClientTally::default();
    let results: Vec<Result<ClientTally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| scope.spawn(move || run_client(addr, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("client thread panicked".to_owned()),
            })
            .collect()
    });
    for result in results {
        let tally = result?;
        total.answered += tally.answered;
        total.internal += tally.internal;
        total.reconnects += tally.reconnects;
    }
    Ok(total)
}

/// Pulls `<metric>{quantile="<q>"} <value>` out of the text exposition.
fn text_quantile(text: &str, metric: &str, q: &str) -> Option<f64> {
    let needle = format!("{metric}{{quantile=\"{q}\"}} ");
    text.lines()
        .find(|l| l.starts_with(&needle))
        .and_then(|l| l[needle.len()..].trim().parse().ok())
}

fn call(client: &mut Client, line: &str) -> Result<Json, String> {
    let reply = client.call_line(line).map_err(|e| format!("{line}: {e}"))?;
    if reply.get("status").and_then(Json::as_str) != Some("ok") {
        return Err(format!("{line}: non-ok reply {}", reply.render()));
    }
    Ok(reply)
}

fn health_verdict(client: &mut Client, id: &str) -> Result<(String, Vec<String>), String> {
    let reply = call(client, &format!(r#"{{"op":"health","id":"{id}"}}"#))?;
    let result = reply.get("result").ok_or("health reply without result")?;
    let verdict = result
        .get("verdict")
        .and_then(Json::as_str)
        .ok_or("health reply without verdict")?
        .to_owned();
    let reasons = result
        .get("reasons")
        .and_then(Json::as_array)
        .map(|rs| {
            rs.iter()
                .filter_map(Json::as_str)
                .map(str::to_owned)
                .collect()
        })
        .unwrap_or_default();
    Ok((verdict, reasons))
}

/// Runs all three phases.
///
/// # Errors
///
/// Any transport failure, unanswered request, or malformed
/// `metrics`/`health` reply. Invariant violations that have a
/// well-formed outcome (drift, a stuck verdict) are detected by
/// [`report`].
pub fn soak(threads: usize) -> Result<TelemetrySoak, String> {
    sram_probe::set_level(sram_probe::Level::Summary);
    crate::chaos::silence_injected_panics();

    // Phase 1: deterministic per-root sampling at a fractional rate.
    sram_probe::trace::set_sampling(SAMPLE_RATE, SAMPLE_SEED);
    let first: Vec<bool> = (0..SAMPLE_KEYS)
        .map(|k| sram_probe::trace::sample(k).is_some())
        .collect();
    let second: Vec<bool> = (0..SAMPLE_KEYS)
        .map(|k| sram_probe::trace::sample(k).is_some())
        .collect();
    let accepted = first.iter().filter(|hit| **hit).count();
    let sampled_fraction = accepted as f64 / SAMPLE_KEYS as f64;
    let sampling_deterministic = first == second;

    // Phase 2: clean round. Warm every distinct query in-process first
    // so wire latencies are cache hits and the clean health check is
    // not at the mercy of a cold LUT build blowing the SLO.
    let engine = engine(threads);
    for capacity in CAPACITIES {
        let line = optimize_line("warm", capacity);
        let request = Request::from_line(&line).map_err(|e| format!("warm parse: {e}"))?;
        let reply = engine.handle(&request);
        if reply.get("status").and_then(Json::as_str) != Some("ok") {
            return Err(format!("warm-up failed: {}", reply.render()));
        }
    }
    let drops_before = sram_probe::trace::dropped();
    let server = Server::start(
        Arc::clone(&engine),
        ServerConfig {
            workers: 2,
            cache_file: None,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr();

    let outcome = soak_rounds(addr);
    server.shutdown();
    sram_probe::trace::set_sampling(1.0, sram_probe::trace::DEFAULT_SAMPLE_SEED);
    let (clean, windows, drift, compared, clean_verdict, faulted, fault_verdict, fault_reasons) =
        outcome?;

    Ok(TelemetrySoak {
        sampling_deterministic,
        sampled_fraction,
        requests: CLIENTS * REQUESTS_PER_CLIENT,
        answered: clean.answered,
        clean_verdict,
        windows,
        quantile_drift: drift,
        quantiles_compared: compared,
        trace_drops: sram_probe::trace::dropped() - drops_before,
        fault_answered: faulted.answered,
        fault_verdict,
        fault_reasons,
        internal_replies: faulted.internal,
        reconnects: faulted.reconnects,
    })
}

/// Results of the clean and faulted rounds, bundled so [`soak`] can
/// shut the server down on every exit path.
type Rounds = (
    ClientTally,
    u64,
    f64,
    usize,
    String,
    ClientTally,
    String,
    Vec<String>,
);

fn soak_rounds(addr: SocketAddr) -> Result<Rounds, String> {
    // Clean load, then a deterministically closed window.
    let clean = load_round(addr)?;
    sram_probe::telemetry::force_sample();

    let mut client = connect(addr)?;
    let metrics = call(&mut client, r#"{"op":"metrics","id":"m0"}"#)?;
    let result = metrics
        .get("result")
        .ok_or("metrics reply without result")?;
    let windows = result
        .get("windows")
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
        .max(0.0) as u64;
    let text = result
        .get("text")
        .and_then(Json::as_str)
        .ok_or("metrics reply without text exposition")?;
    let latency = result
        .get("quantiles")
        .and_then(|q| q.get("serve.request.latency_ns"));
    let mut drift = 0.0f64;
    let mut compared = 0usize;
    for (q, key) in [("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")] {
        let from_text = text_quantile(text, "sram_serve_request_latency_ns", q);
        let from_json = latency.and_then(|l| l.get(key)).and_then(Json::as_f64);
        if let (Some(t), Some(j)) = (from_text, from_json) {
            drift = drift.max((t - j).abs());
            compared += 1;
        }
    }
    let (clean_verdict, _) = health_verdict(&mut client, "h-clean")?;

    // Faulted load under the injected plan, then the verdict check.
    sram_faults::install(&soak_plan());
    let faulted = match load_round(addr) {
        Ok(tally) => tally,
        Err(e) => {
            sram_faults::uninstall();
            return Err(e);
        }
    };
    sram_faults::uninstall();
    sram_probe::telemetry::force_sample();
    let (fault_verdict, fault_reasons) = health_verdict(&mut client, "h-fault")?;

    Ok((
        clean,
        windows,
        drift,
        compared,
        clean_verdict,
        faulted,
        fault_verdict,
        fault_reasons,
    ))
}

/// Formats the telemetry-soak report from a finished [`TelemetrySoak`],
/// enforcing every invariant.
///
/// # Errors
///
/// Any invariant violation: non-deterministic sampling, an accept
/// fraction off the configured rate, unanswered requests, a non-`ok`
/// clean verdict, a missing window, quantile drift between the two
/// expositions, trace-ring drops, or a verdict that ignored the fault
/// plan.
pub fn report(t: &TelemetrySoak) -> Result<String, String> {
    let mut out = String::from(
        "Telemetry soak (sram-probe + sram-serve): windowed metrics, SLO health, sampled tracing\n\n",
    );
    out.push_str(&format!(
        "  sampling: {SAMPLE_KEYS} roots at rate {SAMPLE_RATE} -> fraction {:.3}, replay {}\n",
        t.sampled_fraction,
        if t.sampling_deterministic {
            "identical"
        } else {
            "DIVERGED"
        }
    ));
    out.push_str(&format!(
        "  clean:    {} requests over {CLIENTS} clients -> {} answered; health: {}\n",
        t.requests, t.answered, t.clean_verdict
    ));
    out.push_str(&format!(
        "  metrics:  {} closed window(s); text vs JSON drift {:e} over {} quantiles\n",
        t.windows, t.quantile_drift, t.quantiles_compared
    ));
    out.push_str(&format!(
        "  tracing:  {} ring drops under sampled load\n",
        t.trace_drops
    ));
    out.push_str(&format!(
        "  faulted:  {} answered ({} internal, {} reconnects); health: {}\n",
        t.fault_answered, t.internal_replies, t.reconnects, t.fault_verdict
    ));
    for reason in &t.fault_reasons {
        out.push_str(&format!("            - {reason}\n"));
    }

    if !t.sampling_deterministic {
        return Err("trace sampling was not deterministic for a fixed seed".to_owned());
    }
    if (t.sampled_fraction - SAMPLE_RATE).abs() > SAMPLE_TOLERANCE {
        return Err(format!(
            "accept fraction {:.3} is off the configured rate {SAMPLE_RATE}",
            t.sampled_fraction
        ));
    }
    if t.answered != t.requests {
        return Err(format!(
            "clean round answered {} of {}",
            t.answered, t.requests
        ));
    }
    if t.clean_verdict != "ok" {
        return Err(format!("clean-run health was {}, not ok", t.clean_verdict));
    }
    if t.windows == 0 {
        return Err("metrics carried no closed telemetry window".to_owned());
    }
    if t.quantiles_compared != 3 {
        return Err(format!(
            "only {} of 3 latency quantiles were present in both expositions",
            t.quantiles_compared
        ));
    }
    if t.quantile_drift != 0.0 {
        return Err(format!(
            "text and JSON expositions drifted by {:e}",
            t.quantile_drift
        ));
    }
    if t.trace_drops != 0 {
        return Err(format!(
            "{} trace-ring drops under sampled load",
            t.trace_drops
        ));
    }
    if t.fault_answered != t.requests {
        return Err(format!(
            "fault round answered {} of {}",
            t.fault_answered, t.requests
        ));
    }
    if t.fault_verdict == "ok" {
        return Err("health verdict never degraded under the injected fault plan".to_owned());
    }
    Ok(out)
}

/// Runs all three phases and renders the invariant-checked report.
///
/// # Errors
///
/// Propagates [`soak`] failures and [`report`] invariant violations.
pub fn run(threads: usize) -> Result<String, String> {
    report(&soak(threads)?)
}

// The soak mutates process globals (sampling state, the telemetry
// ring, the fault registry), so its end-to-end test lives in
// `tests/telemetry_soak.rs` (its own process). Only global-free pieces
// are tested here.
#[cfg(test)]
mod tests {
    use super::*;

    fn healthy_outcome() -> TelemetrySoak {
        TelemetrySoak {
            sampling_deterministic: true,
            sampled_fraction: 0.248,
            requests: 24,
            answered: 24,
            clean_verdict: "ok".to_owned(),
            windows: 2,
            quantile_drift: 0.0,
            quantiles_compared: 3,
            trace_drops: 0,
            fault_answered: 24,
            fault_verdict: "degraded".to_owned(),
            fault_reasons: vec!["2 worker panics in the ring".to_owned()],
            internal_replies: 2,
            reconnects: 1,
        }
    }

    #[test]
    fn report_names_the_invariants() {
        let text = report(&healthy_outcome()).expect("healthy outcome renders");
        assert!(text.contains("replay identical"));
        assert!(text.contains("health: ok"));
        assert!(text.contains("0 ring drops"));
        assert!(text.contains("health: degraded"));
        assert!(text.contains("worker panics"));
    }

    type Sabotage = fn(&mut TelemetrySoak);

    #[test]
    fn report_rejects_each_broken_invariant() {
        let broken: [(&str, Sabotage); 8] = [
            ("sampling", |t| t.sampling_deterministic = false),
            ("fraction", |t| t.sampled_fraction = 0.9),
            ("answered", |t| t.answered = 23),
            ("clean verdict", |t| t.clean_verdict = "degraded".into()),
            ("windows", |t| t.windows = 0),
            ("drift", |t| t.quantile_drift = 1.0),
            ("drops", |t| t.trace_drops = 4),
            ("stuck verdict", |t| t.fault_verdict = "ok".into()),
        ];
        for (label, sabotage) in broken {
            let mut t = healthy_outcome();
            sabotage(&mut t);
            assert!(report(&t).is_err(), "{label} violation must be fatal");
        }
    }

    #[test]
    fn soak_plan_injects_both_fault_kinds() {
        let mut set = sram_faults::ActiveSet::new(&soak_plan());
        for _ in 0..100 {
            set.decide("serve.worker_panic");
            set.decide("serve.conn_drop");
        }
        assert_eq!(set.injected_total(), 3, "2 panics + 1 drop, capped");
    }

    #[test]
    fn text_quantile_parses_the_exposition_line() {
        let text = "# header\nsram_x{quantile=\"0.5\"} 1.25e3\nsram_x_count 4\n";
        assert_eq!(text_quantile(text, "sram_x", "0.5"), Some(1250.0));
        assert_eq!(text_quantile(text, "sram_x", "0.9"), None);
    }
}
