//! Figure 7: delay, energy, and EDP of the four configurations across
//! capacities, plus the bitline-vs-total delay decomposition.

use crate::format_series;
use sram_array::Capacity;
use sram_coopt::{CoOptimizationFramework, CooptError, Method, OptimalDesign};
use sram_device::VtFlavor;

/// The Fig. 7 data set: one optimal design per (capacity, config).
#[derive(Debug, Clone)]
pub struct Fig7Data {
    /// Capacities swept (128 B … 16 KB).
    pub capacities: Vec<Capacity>,
    /// Designs in `capacity-major, (LVT-M1, LVT-M2, HVT-M1, HVT-M2)`
    /// order.
    pub designs: Vec<OptimalDesign>,
}

impl Fig7Data {
    /// The design for one (capacity, flavor, method).
    ///
    /// # Panics
    ///
    /// Panics if the combination was not computed.
    #[must_use]
    pub fn design(&self, capacity: Capacity, flavor: VtFlavor, method: Method) -> &OptimalDesign {
        self.designs
            .iter()
            .find(|d| d.capacity == capacity && d.flavor == flavor && d.method == method)
            // sram-lint: allow(no-panic) documented panic; compute() fills every (capacity, flavor, method) triple
            .expect("combination not computed")
    }

    /// Average EDP saving of HVT-M2 vs. LVT-M2 over capacities ≥ 1 KB
    /// (the paper's 59 % headline).
    #[must_use]
    pub fn average_large_capacity_edp_saving(&self) -> f64 {
        let mut savings = Vec::new();
        for &c in &self.capacities {
            if c.bytes() >= 1024 {
                let lvt = self.design(c, VtFlavor::Lvt, Method::M2);
                let hvt = self.design(c, VtFlavor::Hvt, Method::M2);
                savings.push(1.0 - hvt.edp() / lvt.edp());
            }
        }
        savings.iter().sum::<f64>() / savings.len().max(1) as f64
    }

    /// Maximum delay penalty of HVT-M2 vs. LVT-M2 (the paper's 12 %
    /// headline).
    #[must_use]
    pub fn max_delay_penalty(&self) -> f64 {
        self.capacities
            .iter()
            .map(|&c| {
                let lvt = self.design(c, VtFlavor::Lvt, Method::M2);
                let hvt = self.design(c, VtFlavor::Hvt, Method::M2);
                hvt.delay() / lvt.delay() - 1.0
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Computes the Fig. 7 sweep (same searches as Table 4).
///
/// # Errors
///
/// Propagates framework failures.
pub fn compute(threads: usize) -> Result<Fig7Data, CooptError> {
    let mut fw = CoOptimizationFramework::paper_mode().with_threads(threads);
    let capacities: Vec<Capacity> = [128usize, 256, 1024, 4096, 16 * 1024]
        .iter()
        .map(|&b| Capacity::from_bytes(b))
        .collect();
    let mut designs = Vec::new();
    for &c in &capacities {
        for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
            for method in [Method::M1, Method::M2] {
                designs.push(fw.optimize(c, flavor, method)?);
            }
        }
    }
    Ok(Fig7Data {
        capacities,
        designs,
    })
}

/// Formats Fig. 7(a)–(d) as tables plus the headline summary.
///
/// # Errors
///
/// Propagates framework failures.
pub fn run(threads: usize) -> Result<String, CooptError> {
    let data = compute(threads)?;
    let configs = [
        (VtFlavor::Lvt, Method::M1),
        (VtFlavor::Lvt, Method::M2),
        (VtFlavor::Hvt, Method::M1),
        (VtFlavor::Hvt, Method::M2),
    ];

    let mut out = String::new();
    for (title, metric) in [
        ("Fig. 7(a) — delay [ps]", 0usize),
        ("Fig. 7(b) — energy [fJ]", 1),
        ("Fig. 7(c) — EDP [fJ*ps = 1e-27 J*s]", 2),
    ] {
        let rows: Vec<Vec<String>> = data
            .capacities
            .iter()
            .map(|&c| {
                let mut row = vec![c.to_string()];
                for &(f, m) in &configs {
                    let d = data.design(c, f, m);
                    let v = match metric {
                        0 => d.delay().picoseconds(),
                        1 => d.energy().femtojoules(),
                        _ => d.edp().joule_seconds() * 1e27,
                    };
                    row.push(format!("{v:.2}"));
                }
                row
            })
            .collect();
        out.push_str(&format!(
            "{title}\n\n{}\n",
            format_series(&["capacity", "LVT-M1", "LVT-M2", "HVT-M1", "HVT-M2"], &rows)
        ));
    }

    // Fig. 7(d): BL vs total delay in HVT-M1 and HVT-M2.
    let rows: Vec<Vec<String>> = data
        .capacities
        .iter()
        .map(|&c| {
            let m1 = data.design(c, VtFlavor::Hvt, Method::M1);
            let m2 = data.design(c, VtFlavor::Hvt, Method::M2);
            vec![
                c.to_string(),
                format!("{:.2}", m1.metrics.read_breakdown.bitline.picoseconds()),
                format!("{:.2}", m1.delay().picoseconds()),
                format!("{:.2}", m2.metrics.read_breakdown.bitline.picoseconds()),
                format!("{:.2}", m2.delay().picoseconds()),
            ]
        })
        .collect();
    out.push_str(&format!(
        "Fig. 7(d) — bitline vs total delay, 6T-HVT arrays [ps]\n\n{}\n",
        format_series(
            &["capacity", "M1 BL", "M1 total", "M2 BL", "M2 total"],
            &rows
        )
    ));

    out.push_str(&format!(
        "Headlines:\n  avg EDP saving HVT-M2 vs LVT-M2 (>=1 KB): {:.1}% (paper: 59%)\n  max delay penalty HVT-M2 vs LVT-M2: {:.1}% (paper: 12%)\n",
        data.average_large_capacity_edp_saving() * 100.0,
        data.max_delay_penalty() * 100.0
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_headlines_hold_in_shape() {
        let data = compute(4).unwrap();
        // Who wins: HVT-M2 has the lowest EDP at every capacity >= 1 KB.
        for &c in &data.capacities {
            if c.bytes() < 1024 {
                continue;
            }
            let hvt_m2 = data.design(c, VtFlavor::Hvt, Method::M2).edp();
            for (f, m) in [
                (VtFlavor::Lvt, Method::M1),
                (VtFlavor::Lvt, Method::M2),
                (VtFlavor::Hvt, Method::M1),
            ] {
                assert!(
                    hvt_m2 <= data.design(c, f, m).edp(),
                    "HVT-M2 not the EDP winner at {c}"
                );
            }
        }
        // EDP saving grows with capacity (leakage dominance).
        let s = &data;
        let saving = |bytes: usize| {
            let c = Capacity::from_bytes(bytes);
            1.0 - s.design(c, VtFlavor::Hvt, Method::M2).edp()
                / s.design(c, VtFlavor::Lvt, Method::M2).edp()
        };
        assert!(saving(16 * 1024) > saving(1024));
        // Average saving for >= 1 KB lands in the paper's neighborhood.
        let avg = data.average_large_capacity_edp_saving();
        assert!(avg > 0.25, "avg saving {avg:.2} too small (paper: 0.59)");
    }

    #[test]
    fn fig7d_negative_gnd_cuts_bl_share() {
        let data = compute(4).unwrap();
        // At the capacities where M2 uses deep negative Gnd, its BL delay
        // is far below M1's (paper: 3.3x average).
        let c = Capacity::from_bytes(4096);
        let m1 = data.design(c, VtFlavor::Hvt, Method::M1);
        let m2 = data.design(c, VtFlavor::Hvt, Method::M2);
        assert!(m1.metrics.read_breakdown.bitline > m2.metrics.read_breakdown.bitline * 1.5);
        assert!(m1.delay() > m2.delay());
    }
}
