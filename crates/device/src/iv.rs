//! The smoothed α-power I-V model.
//!
//! A single continuous expression covers subthreshold, near-threshold and
//! strong inversion — essential here because the paper's whole design space
//! (100 mV–700 mV rails around a 450 mV nominal) straddles all three
//! regions:
//!
//! ```text
//! s      = SS · α / ln 10                      (smoothing voltage)
//! f(Vgs) = s · ln(1 + exp((Vgs − Vt_eff) / s)) (soft overdrive)
//! I      = k · f^α · (1 − e^(−Vds/Vsat)) · (1 + λ·Vds)
//! ```
//!
//! * Strong inversion (`Vgs − Vt ≫ s`): `f → Vgs − Vt`, recovering the
//!   α-power law `I = k (Vgs − Vt)^α` — the exact form of the paper's
//!   read-current fit.
//! * Subthreshold (`Vgs ≪ Vt`): `f → s·e^((Vgs−Vt)/s)`, giving
//!   `I ∝ 10^((Vgs−Vt)/SS)` — an exponential with the card's subthreshold
//!   slope.
//!
//! The model is source-drain symmetric: for `Vds < 0` the terminals are
//! swapped and the sign flipped, which transient simulation of pass gates
//! (the 6T access transistors!) requires.

use crate::DeviceParams;
use sram_units::{Current, Voltage};

/// Evaluates drain current for a parameter card.
///
/// This is a thin, copyable evaluator bound to a [`DeviceParams`]; the
/// higher-level [`crate::FinFet`] multiplies by the fin count and applies
/// per-instance Vt variation.
#[derive(Debug, Clone, PartialEq)]
pub struct IvModel<'a> {
    params: &'a DeviceParams,
    /// Additional threshold shift (process variation), in volts.
    delta_vt: f64,
}

impl<'a> IvModel<'a> {
    /// Creates an evaluator for `params` with an optional threshold shift
    /// `delta_vt` (used by Monte Carlo sampling; pass [`Voltage::ZERO`] for
    /// the nominal device).
    #[must_use]
    pub fn new(params: &'a DeviceParams, delta_vt: Voltage) -> Self {
        Self {
            params,
            delta_vt: delta_vt.volts(),
        }
    }

    /// Smoothing voltage `s = SS · α / ln 10`.
    fn smoothing(&self) -> f64 {
        self.params.subthreshold_slope.volts() * self.params.alpha / core::f64::consts::LN_10
    }

    /// Per-fin drain current of an N-type device for *n-referenced*
    /// gate-source and drain-source voltages.
    ///
    /// Positive return value flows from drain to source. Handles `Vds < 0`
    /// by source/drain swap (the device is symmetric).
    #[must_use]
    pub fn ids_per_fin(&self, vgs: Voltage, vds: Voltage) -> Current {
        let vgs = vgs.volts();
        let vds = vds.volts();
        if vds < 0.0 {
            // Swap source and drain: Vgd becomes the controlling voltage.
            let vgd = vgs - vds;
            return Current::from_amps(-self.ids_raw(vgd, -vds));
        }
        Current::from_amps(self.ids_raw(vgs, vds))
    }

    fn ids_raw(&self, vgs: f64, vds: f64) -> f64 {
        debug_assert!(vds >= 0.0);
        let p = self.params;
        let s = self.smoothing();
        let vt_eff = p.vt.volts() + self.delta_vt - p.dibl * vds;
        let x = (vgs - vt_eff) / s;
        // ln(1 + e^x) evaluated without overflow for large |x|.
        let softplus = if x > 30.0 {
            x
        } else if x < -30.0 {
            x.exp()
        } else {
            x.exp().ln_1p()
        };
        let f = s * softplus;
        let saturation = 1.0 - (-vds / p.v_sat.volts()).exp();
        let clm = 1.0 + p.lambda * vds;
        p.k_per_fin * f.powf(p.alpha) * saturation * clm
    }

    /// Numerical transconductance `∂I/∂Vgs` per fin, in siemens.
    ///
    /// Central difference with a 10 µV step; the model is smooth so this is
    /// accurate to ~1e-9 relative and removes the need for hand-derived
    /// (and easily wrong) analytic derivatives in the Newton solver.
    #[must_use]
    pub fn gm_per_fin(&self, vgs: Voltage, vds: Voltage) -> f64 {
        let h = Voltage::from_microvolts(10.0);
        let hi = self.ids_per_fin(vgs + h, vds).amps();
        let lo = self.ids_per_fin(vgs - h, vds).amps();
        (hi - lo) / (2.0 * h.volts())
    }

    /// Numerical output conductance `∂I/∂Vds` per fin, in siemens.
    #[must_use]
    pub fn gds_per_fin(&self, vgs: Voltage, vds: Voltage) -> f64 {
        let h = Voltage::from_microvolts(10.0);
        let hi = self.ids_per_fin(vgs, vds + h).amps();
        let lo = self.ids_per_fin(vgs, vds - h).amps();
        (hi - lo) / (2.0 * h.volts())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::sevennm_card;
    use crate::{Polarity, VtFlavor};

    fn hvt() -> DeviceParams {
        sevennm_card(Polarity::N, VtFlavor::Hvt)
    }

    fn model(p: &DeviceParams) -> IvModel<'_> {
        IvModel::new(p, Voltage::ZERO)
    }

    #[test]
    fn strong_inversion_recovers_alpha_power() {
        let p = hvt();
        let m = model(&p);
        // Far above threshold the softplus is within 1e-6 of (Vgs - Vt).
        let vgs = Voltage::from_volts(0.9);
        let vds = Voltage::from_volts(0.9);
        let i = m.ids_per_fin(vgs, vds).amps();
        let vt_eff = p.vt.volts() - p.dibl * 0.9;
        let expected = p.k_per_fin * (0.9 - vt_eff).powf(p.alpha) * (1.0 + p.lambda * 0.9);
        assert!((i / expected - 1.0).abs() < 1e-3, "{i} vs {expected}");
    }

    #[test]
    fn subthreshold_slope_matches_card() {
        let p = hvt();
        let m = model(&p);
        let vds = Voltage::from_volts(0.45);
        let ss = p.subthreshold_slope.volts();
        let i1 = m.ids_per_fin(Voltage::from_volts(0.10), vds).amps();
        let i2 = m.ids_per_fin(Voltage::from_volts(0.10 + ss), vds).amps();
        // One subthreshold-slope step is one decade.
        let decades = (i2 / i1).log10();
        assert!(
            (decades - 1.0).abs() < 0.05,
            "decades per SS step: {decades}"
        );
    }

    #[test]
    fn monotone_in_vgs_and_vds() {
        let p = hvt();
        let m = model(&p);
        let mut last = -1.0;
        for mv in (0..=900).step_by(25) {
            let i = m
                .ids_per_fin(
                    Voltage::from_millivolts(mv as f64),
                    Voltage::from_volts(0.45),
                )
                .amps();
            assert!(i > last, "not monotone in Vgs at {mv} mV");
            last = i;
        }
        let mut last = -1.0;
        for mv in (0..=900).step_by(25) {
            let i = m
                .ids_per_fin(
                    Voltage::from_volts(0.45),
                    Voltage::from_millivolts(mv as f64),
                )
                .amps();
            assert!(i >= last, "not monotone in Vds at {mv} mV");
            last = i;
        }
    }

    #[test]
    fn reverse_vds_is_antisymmetric() {
        let p = hvt();
        let m = model(&p);
        // A pass transistor conducting backwards: Vg = 0.45, source node at
        // 0.45, drain node at 0.2 => vgs = 0, vds = -0.25 must equal the
        // forward current with terminals relabeled.
        let back = m
            .ids_per_fin(Voltage::from_volts(0.0), Voltage::from_volts(-0.25))
            .amps();
        let fwd = m
            .ids_per_fin(Voltage::from_volts(0.25), Voltage::from_volts(0.25))
            .amps();
        assert!(
            (back + fwd).abs() < 1e-12 * fwd.abs().max(1.0),
            "{back} vs {fwd}"
        );
    }

    #[test]
    fn zero_vds_carries_zero_current() {
        let p = hvt();
        let m = model(&p);
        let i = m.ids_per_fin(Voltage::from_volts(0.45), Voltage::ZERO);
        assert_eq!(i.amps(), 0.0);
    }

    #[test]
    fn vt_shift_weakens_device() {
        let p = hvt();
        let nominal = IvModel::new(&p, Voltage::ZERO);
        let slow = IvModel::new(&p, Voltage::from_millivolts(30.0));
        let fast = IvModel::new(&p, Voltage::from_millivolts(-30.0));
        let bias = Voltage::from_volts(0.45);
        let i_nom = nominal.ids_per_fin(bias, bias).amps();
        assert!(slow.ids_per_fin(bias, bias).amps() < i_nom);
        assert!(fast.ids_per_fin(bias, bias).amps() > i_nom);
    }

    #[test]
    fn gm_and_gds_positive_in_operating_region() {
        let p = hvt();
        let m = model(&p);
        let vgs = Voltage::from_volts(0.45);
        let vds = Voltage::from_volts(0.3);
        assert!(m.gm_per_fin(vgs, vds) > 0.0);
        assert!(m.gds_per_fin(vgs, vds) > 0.0);
    }

    #[test]
    fn extreme_biases_do_not_overflow() {
        let p = hvt();
        let m = model(&p);
        let i = m.ids_per_fin(Voltage::from_volts(50.0), Voltage::from_volts(50.0));
        assert!(i.is_finite());
        let i = m.ids_per_fin(Voltage::from_volts(-50.0), Voltage::from_volts(0.45));
        assert!(i.is_finite());
        assert!(i.amps() >= 0.0);
    }
}
