//! Device-level ON/OFF current figures of merit.
//!
//! The paper's Section 2 characterizes the library by three ratios:
//! HVT devices have **2× lower ION**, **20× lower IOFF**, and **10× higher
//! ION/IOFF** than LVT. These helpers extract those figures from a device
//! instance at an arbitrary supply so the claims can be checked (and are,
//! in this module's tests and in the Fig. 2 reproduction).

use crate::FinFet;
use sram_units::{Current, Voltage};

/// ON current: `Ids` at `Vgs = Vds = vdd`.
#[must_use]
pub fn ion(device: &FinFet, vdd: Voltage) -> Current {
    device.ids(vdd, vdd)
}

/// OFF current: `Ids` at `Vgs = 0, Vds = vdd`.
#[must_use]
pub fn ioff(device: &FinFet, vdd: Voltage) -> Current {
    device.ids(Voltage::ZERO, vdd)
}

/// Dimensionless ION/IOFF ratio at `vdd`.
#[must_use]
pub fn on_off_ratio(device: &FinFet, vdd: Voltage) -> f64 {
    ion(device, vdd) / ioff(device, vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{sevennm_card, NOMINAL_VDD};
    use crate::{Polarity, VtFlavor};

    fn dev(flavor: VtFlavor) -> FinFet {
        FinFet::new(sevennm_card(Polarity::N, flavor), 1)
    }

    #[test]
    fn hvt_has_roughly_half_the_on_current() {
        let r = ion(&dev(VtFlavor::Lvt), NOMINAL_VDD) / ion(&dev(VtFlavor::Hvt), NOMINAL_VDD);
        assert!(r > 1.6 && r < 2.4, "ION(LVT)/ION(HVT) = {r}");
    }

    #[test]
    fn hvt_has_roughly_twenty_x_lower_off_current() {
        let r = ioff(&dev(VtFlavor::Lvt), NOMINAL_VDD) / ioff(&dev(VtFlavor::Hvt), NOMINAL_VDD);
        assert!(r > 14.0 && r < 28.0, "IOFF(LVT)/IOFF(HVT) = {r}");
    }

    #[test]
    fn hvt_has_roughly_ten_x_better_on_off_ratio() {
        let r = on_off_ratio(&dev(VtFlavor::Hvt), NOMINAL_VDD)
            / on_off_ratio(&dev(VtFlavor::Lvt), NOMINAL_VDD);
        assert!(r > 6.0 && r < 16.0, "(ION/IOFF) HVT / LVT = {r}");
    }

    #[test]
    fn off_current_grows_with_supply() {
        let d = dev(VtFlavor::Hvt);
        let low = ioff(&d, Voltage::from_millivolts(100.0));
        let high = ioff(&d, NOMINAL_VDD);
        assert!(high > low); // DIBL + saturation factor
    }
}
