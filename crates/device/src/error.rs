//! Device-layer error type.

use core::fmt;

/// Errors produced when constructing or evaluating device models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeviceError {
    /// A device parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        constraint: &'static str,
    },
    /// A fin count of zero was requested (width quantization requires at
    /// least one fin).
    ZeroFins,
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidParameter { name, constraint } => {
                write!(f, "invalid device parameter `{name}`: {constraint}")
            }
            DeviceError::ZeroFins => write!(f, "fin count must be at least 1"),
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DeviceError::ZeroFins;
        let msg = e.to_string();
        assert!(msg.starts_with("fin count"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<DeviceError>();
    }
}
