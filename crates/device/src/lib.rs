//! 7 nm FinFET compact device models for SRAM co-optimization.
//!
//! This crate is the **device layer** of the DAC'16 reproduction. The paper
//! uses a proprietary 7 nm FinFET library (Chen et al., S3S'14) with a
//! nominal supply of 450 mV and two threshold flavors:
//!
//! * **LVT** — low threshold voltage, used for all peripheral circuits;
//! * **HVT** — high threshold voltage, candidate for the 6T cell: ~2× lower
//!   ON current, ~20× lower OFF current, ~10× higher ION/IOFF ratio.
//!
//! Since that library is not available, this crate provides an analytical
//! compact model — a smoothed α-power law with an exponential subthreshold
//! region (EKV-style interpolation) — calibrated against every anchor the
//! paper publishes (see [`params`] and DESIGN.md §5):
//!
//! * read-current fit exponent `a = 1.3` and HVT `Vt = 335 mV`,
//! * ION(LVT) ≈ 2 × ION(HVT) at `Vgs = Vds = 450 mV`,
//! * IOFF(LVT) ≈ 20 × IOFF(HVT),
//! * 6T cell leakage 1.692 nW (LVT) / 0.082 nW (HVT) at 450 mV.
//!
//! The model respects FinFET **width quantization**: drive strength scales
//! only by the integer fin count ([`FinFet::fins`]), never continuously.
//!
//! # Examples
//!
//! ```
//! use sram_device::{DeviceLibrary, FinFet, VtFlavor};
//! use sram_units::Voltage;
//!
//! let lib = DeviceLibrary::sevennm();
//! let hvt = FinFet::new(lib.nfet(VtFlavor::Hvt).clone(), 1);
//! let lvt = FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1);
//!
//! let vdd = Voltage::from_millivolts(450.0);
//! let ratio = lvt.ids(vdd, vdd).amps() / hvt.ids(vdd, vdd).amps();
//! assert!(ratio > 1.5 && ratio < 2.5); // LVT drives ~2x harder
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacitance;
mod error;
mod finfet;
mod iv;
mod leakage;
mod library;
pub mod params;
mod variation;

pub use capacitance::DeviceCapacitances;
pub use error::DeviceError;
pub use finfet::{FinFet, Polarity, VtFlavor};
pub use iv::IvModel;
pub use leakage::{ioff, ion, on_off_ratio};
pub use library::DeviceLibrary;
pub use params::DeviceParams;
pub use variation::{VariationModel, VtSampler};
