//! The device library: all four `(polarity, flavor)` cards.

use crate::params::{sevennm_card, NOMINAL_VDD};
use crate::{DeviceParams, Polarity, VtFlavor};
use sram_units::Voltage;

/// A coherent set of device cards for one technology node.
///
/// The paper adopts a 7 nm FinFET library with 450 mV nominal supply; the
/// [`DeviceLibrary::sevennm`] constructor returns our calibrated substitute
/// (see [`crate::params`] for the calibration anchors).
///
/// # Examples
///
/// ```
/// use sram_device::{DeviceLibrary, VtFlavor};
///
/// let lib = DeviceLibrary::sevennm();
/// assert!(lib.nfet(VtFlavor::Hvt).vt > lib.nfet(VtFlavor::Lvt).vt);
/// assert_eq!(lib.nominal_vdd().millivolts(), 450.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceLibrary {
    nominal_vdd: Voltage,
    nfet_lvt: DeviceParams,
    nfet_hvt: DeviceParams,
    pfet_lvt: DeviceParams,
    pfet_hvt: DeviceParams,
}

impl DeviceLibrary {
    /// The calibrated 7 nm FinFET library (450 mV nominal).
    #[must_use]
    pub fn sevennm() -> Self {
        Self {
            nominal_vdd: NOMINAL_VDD,
            nfet_lvt: sevennm_card(Polarity::N, VtFlavor::Lvt),
            nfet_hvt: sevennm_card(Polarity::N, VtFlavor::Hvt),
            pfet_lvt: sevennm_card(Polarity::P, VtFlavor::Lvt),
            pfet_hvt: sevennm_card(Polarity::P, VtFlavor::Hvt),
        }
    }

    /// Nominal supply voltage of the library.
    #[must_use]
    pub fn nominal_vdd(&self) -> Voltage {
        self.nominal_vdd
    }

    /// N-channel card of the requested flavor.
    #[must_use]
    pub fn nfet(&self, flavor: VtFlavor) -> &DeviceParams {
        match flavor {
            VtFlavor::Lvt => &self.nfet_lvt,
            VtFlavor::Hvt => &self.nfet_hvt,
        }
    }

    /// P-channel card of the requested flavor.
    #[must_use]
    pub fn pfet(&self, flavor: VtFlavor) -> &DeviceParams {
        match flavor {
            VtFlavor::Lvt => &self.pfet_lvt,
            VtFlavor::Hvt => &self.pfet_hvt,
        }
    }

    /// Card for an explicit `(polarity, flavor)` pair.
    #[must_use]
    pub fn device(&self, polarity: Polarity, flavor: VtFlavor) -> &DeviceParams {
        match polarity {
            Polarity::N => self.nfet(flavor),
            Polarity::P => self.pfet(flavor),
        }
    }

    /// Re-derives every card at an absolute temperature (see
    /// [`DeviceParams::at_temperature`]); the base library is 300 K.
    ///
    /// # Panics
    ///
    /// Panics for non-positive temperatures.
    #[must_use]
    pub fn at_temperature(&self, kelvin: f64) -> Self {
        Self {
            nominal_vdd: self.nominal_vdd,
            nfet_lvt: self.nfet_lvt.at_temperature(kelvin),
            nfet_hvt: self.nfet_hvt.at_temperature(kelvin),
            pfet_lvt: self.pfet_lvt.at_temperature(kelvin),
            pfet_hvt: self.pfet_hvt.at_temperature(kelvin),
        }
    }
}

impl Default for DeviceLibrary {
    fn default() -> Self {
        Self::sevennm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cards_have_matching_metadata() {
        let lib = DeviceLibrary::sevennm();
        assert_eq!(lib.nfet(VtFlavor::Lvt).polarity, Polarity::N);
        assert_eq!(lib.nfet(VtFlavor::Lvt).flavor, VtFlavor::Lvt);
        assert_eq!(lib.pfet(VtFlavor::Hvt).polarity, Polarity::P);
        assert_eq!(lib.pfet(VtFlavor::Hvt).flavor, VtFlavor::Hvt);
    }

    #[test]
    fn device_dispatches_by_polarity() {
        let lib = DeviceLibrary::sevennm();
        assert_eq!(
            lib.device(Polarity::P, VtFlavor::Lvt),
            lib.pfet(VtFlavor::Lvt)
        );
    }

    #[test]
    fn default_is_sevennm() {
        assert_eq!(DeviceLibrary::default(), DeviceLibrary::sevennm());
    }
}
