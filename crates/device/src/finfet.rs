//! FinFET instances: a parameter card plus quantized width (fin count).

use crate::{DeviceCapacitances, DeviceError, DeviceParams, IvModel};
use sram_units::{Current, Voltage};

/// Channel polarity of a FinFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// N-channel device (pull-down / access transistors).
    N,
    /// P-channel device (pull-up / precharge transistors).
    P,
}

impl core::fmt::Display for Polarity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Polarity::N => f.write_str("NFET"),
            Polarity::P => f.write_str("PFET"),
        }
    }
}

/// Threshold-voltage flavor of the 7 nm library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VtFlavor {
    /// Low threshold voltage: fast, leaky. Used for all peripherals.
    Lvt,
    /// High threshold voltage: ~2× lower ION, ~20× lower IOFF. The paper's
    /// candidate for the cell transistors.
    Hvt,
}

impl core::fmt::Display for VtFlavor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VtFlavor::Lvt => f.write_str("LVT"),
            VtFlavor::Hvt => f.write_str("HVT"),
        }
    }
}

/// A FinFET instance: a device card with a quantized width.
///
/// FinFET width quantization means drive strength only scales with the
/// integer number of fins — the property that forces the paper to treat
/// `N_pre` and `N_wr` as discrete architecture-level optimization
/// variables rather than continuously sizing the periphery.
///
/// # Examples
///
/// ```
/// use sram_device::{DeviceLibrary, FinFet, VtFlavor};
/// use sram_units::Voltage;
///
/// let lib = DeviceLibrary::sevennm();
/// let one_fin = FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1);
/// let four_fin = FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 4);
///
/// let v = Voltage::from_millivolts(450.0);
/// let ratio = four_fin.ids(v, v).amps() / one_fin.ids(v, v).amps();
/// assert!((ratio - 4.0).abs() < 1e-9); // exactly 4x: width quantization
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FinFet {
    params: DeviceParams,
    fins: u32,
    delta_vt: Voltage,
}

impl FinFet {
    /// Creates a FinFET with `fins` parallel fins.
    ///
    /// # Panics
    ///
    /// Panics if `fins` is zero; use [`FinFet::try_new`] for a fallible
    /// variant.
    #[must_use]
    pub fn new(params: DeviceParams, fins: u32) -> Self {
        // sram-lint: allow(no-panic) documented panic contract; try_new is the fallible variant
        Self::try_new(params, fins).expect("fin count must be at least 1")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::ZeroFins`] when `fins == 0` and propagates
    /// [`DeviceParams::validate`] failures.
    pub fn try_new(params: DeviceParams, fins: u32) -> Result<Self, DeviceError> {
        if fins == 0 {
            return Err(DeviceError::ZeroFins);
        }
        params.validate()?;
        Ok(Self {
            params,
            fins,
            delta_vt: Voltage::ZERO,
        })
    }

    /// Returns a copy with an additional threshold shift (Monte Carlo
    /// process variation).
    #[must_use]
    pub fn with_vt_shift(mut self, delta_vt: Voltage) -> Self {
        self.delta_vt = delta_vt;
        self
    }

    /// The device parameter card.
    #[must_use]
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Number of fins (quantized width).
    #[must_use]
    pub fn fins(&self) -> u32 {
        self.fins
    }

    /// Channel polarity.
    #[must_use]
    pub fn polarity(&self) -> Polarity {
        self.params.polarity
    }

    /// Applied threshold shift.
    #[must_use]
    pub fn vt_shift(&self) -> Voltage {
        self.delta_vt
    }

    /// Drain current for polarity-normalized terminal voltages.
    ///
    /// For N-type devices `vgs`/`vds` are the usual gate-source and
    /// drain-source voltages and positive current flows drain→source.
    /// For P-type devices pass **source-referenced magnitudes** `vsg`/`vsd`
    /// and the returned positive current flows source→drain. Use
    /// [`FinFet::current_into_drain`] for raw node voltages.
    #[must_use]
    pub fn ids(&self, vgs: Voltage, vds: Voltage) -> Current {
        let model = IvModel::new(&self.params, self.delta_vt);
        model.ids_per_fin(vgs, vds) * f64::from(self.fins)
    }

    /// Current flowing *into the drain terminal* given absolute node
    /// voltages `(vg, vd, vs)`, handling polarity internally.
    ///
    /// This is the sign convention the MNA stamping in `sram-spice` uses:
    /// for an NFET in normal operation the returned value is positive (the
    /// drain sinks current); for a PFET pulling its drain high it is
    /// negative.
    #[must_use]
    pub fn current_into_drain(&self, vg: Voltage, vd: Voltage, vs: Voltage) -> Current {
        match self.params.polarity {
            Polarity::N => self.ids(vg - vs, vd - vs),
            Polarity::P => -self.ids(vs - vg, vs - vd),
        }
    }

    /// Total gate capacitance (`fins × c_gate_per_fin`).
    #[must_use]
    pub fn c_gate(&self) -> sram_units::Capacitance {
        self.params.c_gate_per_fin * f64::from(self.fins)
    }

    /// Total drain capacitance (`fins × c_drain_per_fin`).
    #[must_use]
    pub fn c_drain(&self) -> sram_units::Capacitance {
        self.params.c_drain_per_fin * f64::from(self.fins)
    }

    /// All capacitances bundled.
    #[must_use]
    pub fn capacitances(&self) -> DeviceCapacitances {
        DeviceCapacitances {
            gate: self.c_gate(),
            drain: self.c_drain(),
            source: self.c_drain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::sevennm_card;

    fn nfet(fins: u32) -> FinFet {
        FinFet::new(sevennm_card(Polarity::N, VtFlavor::Hvt), fins)
    }

    fn pfet(fins: u32) -> FinFet {
        FinFet::new(sevennm_card(Polarity::P, VtFlavor::Hvt), fins)
    }

    #[test]
    fn zero_fins_rejected() {
        let err = FinFet::try_new(sevennm_card(Polarity::N, VtFlavor::Lvt), 0).unwrap_err();
        assert_eq!(err, DeviceError::ZeroFins);
    }

    #[test]
    fn current_scales_exactly_with_fins() {
        let v = Voltage::from_volts(0.45);
        let i1 = nfet(1).ids(v, v).amps();
        let i3 = nfet(3).ids(v, v).amps();
        assert!((i3 / i1 - 3.0).abs() < 1e-12);
    }

    #[test]
    fn nfet_drain_sinks_current_when_on() {
        let d = nfet(1).current_into_drain(
            Voltage::from_volts(0.45), // gate high
            Voltage::from_volts(0.45), // drain high
            Voltage::ZERO,             // source at ground
        );
        assert!(d.amps() > 0.0);
    }

    #[test]
    fn pfet_drain_sources_current_when_on() {
        let d = pfet(1).current_into_drain(
            Voltage::ZERO,             // gate low: PFET on
            Voltage::ZERO,             // drain at ground
            Voltage::from_volts(0.45), // source at Vdd
        );
        assert!(d.amps() < 0.0, "PFET should push current out of its drain");
    }

    #[test]
    fn off_pfet_leaks_little() {
        let on = pfet(1)
            .current_into_drain(Voltage::ZERO, Voltage::ZERO, Voltage::from_volts(0.45))
            .amps()
            .abs();
        let off = pfet(1)
            .current_into_drain(
                Voltage::from_volts(0.45),
                Voltage::ZERO,
                Voltage::from_volts(0.45),
            )
            .amps()
            .abs();
        assert!(off < on / 1e3);
    }

    #[test]
    fn capacitances_scale_with_fins() {
        let c1 = nfet(1).c_gate();
        let c5 = nfet(5).c_gate();
        assert!((c5 / c1 - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vt_shift_reduces_on_current() {
        let v = Voltage::from_volts(0.45);
        let nominal = nfet(1);
        let shifted = nfet(1).with_vt_shift(Voltage::from_millivolts(50.0));
        assert!(shifted.ids(v, v) < nominal.ids(v, v));
    }

    #[test]
    fn display_of_enums() {
        assert_eq!(Polarity::N.to_string(), "NFET");
        assert_eq!(VtFlavor::Hvt.to_string(), "HVT");
    }
}
