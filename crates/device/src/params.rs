//! The calibrated 7 nm FinFET device card.
//!
//! The paper's device library (Chen et al., S3S'14) is proprietary; this
//! module holds the parameters of our substitute compact model together
//! with the published anchors they were calibrated against.
//!
//! # Calibration rationale (DESIGN.md §5)
//!
//! The paper publishes a power-law fit for the HVT read current,
//! `I_read = b · (V_DDC − V_SSC − Vt)^a` with `a = 1.3` and
//! `Vt = 335 mV`, which fixes the model's exponent and the HVT NFET
//! threshold. The remaining degrees of freedom are pinned as follows:
//!
//! * **Subthreshold slope** 63 mV/dec (typical for 7 nm FinFETs) together
//!   with ΔVt = 83 mV between LVT and HVT simultaneously reproduces the
//!   2× ION ratio and the ~20× IOFF ratio the paper quotes
//!   (`IOFF ratio = 10^(ΔVt/SS) = 10^(83/63) ≈ 21`).
//! * **Transconductance coefficient** `k` is set so a 6T cell's simulated
//!   leakage lands on the paper's 1.692 nW (LVT) / 0.082 nW (HVT) at
//!   450 mV.
//! * **DIBL** is small (20 mV/V) per the paper's observation that FinFET
//!   DIBL is negligible.

use crate::{DeviceError, Polarity, VtFlavor};
use sram_units::{Capacitance, Voltage};

/// Nominal supply voltage of the adopted 7 nm library (450 mV).
pub const NOMINAL_VDD: Voltage = Voltage::from_volts(0.450);

/// Thermal voltage `kT/q` at 300 K.
pub const THERMAL_VOLTAGE: Voltage = Voltage::from_volts(0.02585);

/// Power-law exponent `a` of the drive-current model, taken directly from
/// the paper's read-current fit (`a = 1.3`).
pub const ALPHA: f64 = 1.3;

/// Subthreshold slope in volts per decade (75 mV/dec).
pub const SUBTHRESHOLD_SLOPE: Voltage = Voltage::from_volts(0.075);

/// Complete parameter set of one FinFET device flavor.
///
/// Obtain instances from [`crate::DeviceLibrary`] rather than constructing
/// them by hand; [`DeviceParams::validate`] is run by the library
/// constructor.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Channel polarity.
    pub polarity: Polarity,
    /// Threshold-voltage flavor.
    pub flavor: VtFlavor,
    /// Threshold voltage (positive magnitude for both polarities).
    pub vt: Voltage,
    /// Power-law exponent of the strong-inversion drive current.
    pub alpha: f64,
    /// Per-fin transconductance coefficient in `A / V^alpha`.
    pub k_per_fin: f64,
    /// Subthreshold slope in volts per decade.
    pub subthreshold_slope: Voltage,
    /// Drain-induced barrier lowering in V/V (small for FinFETs).
    pub dibl: f64,
    /// Saturation smoothing voltage for the `(1 − e^(−Vds/Vsat))` factor.
    pub v_sat: Voltage,
    /// Channel-length modulation in 1/V.
    pub lambda: f64,
    /// Per-fin gate capacitance.
    pub c_gate_per_fin: Capacitance,
    /// Per-fin drain (junction + fringe) capacitance.
    pub c_drain_per_fin: Capacitance,
    /// Single-fin random-Vt standard deviation (Pelgrom-style; divides by
    /// `sqrt(fins)` for multi-fin devices).
    pub sigma_vt_single_fin: Voltage,
}

impl DeviceParams {
    /// Checks every parameter against its physical range.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] naming the first parameter
    /// that violates its constraint (non-positive slopes, thresholds,
    /// coefficients, or capacitances).
    // `!(x > 0)` is deliberate: it also rejects NaN, which `x <= 0`
    // would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), DeviceError> {
        if !(self.vt.volts() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "vt",
                constraint: "threshold voltage must be positive",
            });
        }
        if !(self.alpha >= 1.0 && self.alpha <= 2.0) {
            return Err(DeviceError::InvalidParameter {
                name: "alpha",
                constraint: "power-law exponent must lie in [1, 2]",
            });
        }
        if !(self.k_per_fin > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "k_per_fin",
                constraint: "transconductance coefficient must be positive",
            });
        }
        if !(self.subthreshold_slope.volts() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "subthreshold_slope",
                constraint: "subthreshold slope must be positive",
            });
        }
        if !(self.dibl >= 0.0 && self.dibl < 0.5) {
            return Err(DeviceError::InvalidParameter {
                name: "dibl",
                constraint: "DIBL must lie in [0, 0.5) V/V",
            });
        }
        if !(self.v_sat.volts() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "v_sat",
                constraint: "saturation smoothing voltage must be positive",
            });
        }
        if !(self.lambda >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "lambda",
                constraint: "channel-length modulation must be non-negative",
            });
        }
        if !(self.c_gate_per_fin.farads() > 0.0) || !(self.c_drain_per_fin.farads() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "capacitance",
                constraint: "per-fin capacitances must be positive",
            });
        }
        if !(self.sigma_vt_single_fin.volts() >= 0.0) {
            return Err(DeviceError::InvalidParameter {
                name: "sigma_vt_single_fin",
                constraint: "Vt sigma must be non-negative",
            });
        }
        Ok(())
    }

    /// Effective threshold at a given drain-source bias, `Vt − DIBL·Vds`.
    #[must_use]
    pub fn vt_eff(&self, vds: Voltage) -> Voltage {
        self.vt - Voltage::from_volts(self.dibl * vds.volts().max(0.0))
    }

    /// Re-derives the card at an absolute temperature (the base card is
    /// characterized at 300 K).
    ///
    /// Temperature physics applied:
    /// * subthreshold slope scales with `T` (`SS = n·kT/q·ln10`) — the
    ///   dominant reason leakage explodes when hot;
    /// * threshold voltage falls ~0.7 mV/K (bandgap narrowing);
    /// * the drive coefficient degrades as `(300/T)^1.3` (phonon-limited
    ///   mobility).
    ///
    /// # Panics
    ///
    /// Panics for non-positive temperatures.
    #[must_use]
    pub fn at_temperature(&self, kelvin: f64) -> Self {
        assert!(kelvin > 0.0, "temperature must be positive kelvin");
        let ratio = kelvin / 300.0;
        Self {
            subthreshold_slope: self.subthreshold_slope * ratio,
            vt: self.vt - Voltage::from_millivolts(0.7 * (kelvin - 300.0)),
            k_per_fin: self.k_per_fin * ratio.powf(-1.3),
            ..self.clone()
        }
    }
}

/// Builds the calibrated parameter card for one `(polarity, flavor)` pair.
#[must_use]
pub fn sevennm_card(polarity: Polarity, flavor: VtFlavor) -> DeviceParams {
    // Threshold voltages. HVT NFET pinned by the paper's read-current fit
    // (335 mV); ΔVt = 83 mV reproduces the 2x ION / ~20x IOFF ratios at
    // SS = 63 mV/dec. PFETs carry a slightly higher magnitude threshold.
    // LVT devices trade electrostatic integrity for drive: noticeably more
    // DIBL. This is what separates the flavors' read SNM (paper Fig. 3(a):
    // RSNM(HVT) ~ 1.9x RSNM(LVT)) beyond the bare threshold shift. The Vt
    // values are chosen so the *effective* thresholds at Vds = Vdd (and
    // with them the 2x ION / 20x IOFF / cell-leakage anchors) match the
    // pure-DeltaVt calibration of DESIGN.md §5.
    let dibl = match flavor {
        VtFlavor::Hvt => 0.005,
        VtFlavor::Lvt => 0.090,
    };
    let vt = match (polarity, flavor) {
        (Polarity::N, VtFlavor::Hvt) => 0.350,
        (Polarity::N, VtFlavor::Lvt) => 0.292,
        (Polarity::P, VtFlavor::Hvt) => 0.360,
        (Polarity::P, VtFlavor::Lvt) => 0.302,
    };
    // Per-fin strength: PFET fins drive ~0.85x of NFET fins (FinFET hole
    // mobility is closer to electron mobility than in planar CMOS, but a
    // deficit remains; the 6T read path needs PD stronger than PU).
    let k_per_fin = match polarity {
        Polarity::N => 2.2e-4,
        Polarity::P => 1.43e-4,
    };
    let (c_gate, c_drain) = match polarity {
        Polarity::N => (0.045e-15, 0.030e-15),
        Polarity::P => (0.050e-15, 0.035e-15),
    };
    DeviceParams {
        polarity,
        flavor,
        vt: Voltage::from_volts(vt),
        alpha: ALPHA,
        k_per_fin,
        subthreshold_slope: SUBTHRESHOLD_SLOPE,
        dibl,
        v_sat: Voltage::from_volts(0.05),
        lambda: 0.04,
        c_gate_per_fin: Capacitance::from_farads(c_gate),
        c_drain_per_fin: Capacitance::from_farads(c_drain),
        sigma_vt_single_fin: Voltage::from_millivolts(28.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cards_validate() {
        for polarity in [Polarity::N, Polarity::P] {
            for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
                sevennm_card(polarity, flavor).validate().unwrap();
            }
        }
    }

    #[test]
    fn hvt_nfet_threshold_matches_paper_fit() {
        let card = sevennm_card(Polarity::N, VtFlavor::Hvt);
        // The *effective* threshold at Vds = Vdd is what the paper's
        // read-current regression sees: Vt - DIBL*Vdd ~ 326 mV, within
        // 10 mV of the published 335 mV fit value.
        let vt_eff = card.vt_eff(NOMINAL_VDD);
        assert!(
            (vt_eff.millivolts() - 335.0).abs() < 20.0,
            "effective HVT Vt = {vt_eff}"
        );
        assert_eq!(card.alpha, 1.3);
    }

    #[test]
    fn delta_vt_gives_twenty_x_ioff_ratio() {
        let hvt = sevennm_card(Polarity::N, VtFlavor::Hvt);
        let lvt = sevennm_card(Polarity::N, VtFlavor::Lvt);
        // Effective thresholds at Vds = Vdd (DIBL differs per flavor).
        let delta = hvt.vt_eff(NOMINAL_VDD) - lvt.vt_eff(NOMINAL_VDD);
        let ratio = 10f64.powf(delta.volts() / SUBTHRESHOLD_SLOPE.volts());
        assert!(ratio > 15.0 && ratio < 30.0, "IOFF ratio {ratio}");
    }

    #[test]
    fn validation_rejects_bad_alpha() {
        let mut card = sevennm_card(Polarity::N, VtFlavor::Hvt);
        card.alpha = 3.0;
        assert!(matches!(
            card.validate(),
            Err(DeviceError::InvalidParameter { name: "alpha", .. })
        ));
    }

    #[test]
    fn validation_rejects_negative_vt() {
        let mut card = sevennm_card(Polarity::N, VtFlavor::Hvt);
        card.vt = Voltage::from_volts(-0.1);
        assert!(card.validate().is_err());
    }

    #[test]
    fn hot_devices_leak_more_and_drive_less() {
        use crate::FinFet;
        let cold = FinFet::new(sevennm_card(Polarity::N, VtFlavor::Hvt), 1);
        let hot = FinFet::new(
            sevennm_card(Polarity::N, VtFlavor::Hvt).at_temperature(398.0),
            1,
        );
        let vdd = NOMINAL_VDD;
        let ioff_gain = hot.ids(Voltage::ZERO, vdd) / cold.ids(Voltage::ZERO, vdd);
        assert!(
            ioff_gain > 5.0,
            "125C leakage gain {ioff_gain:.1}x looks too small"
        );
        // Temperature inversion: at a near-threshold 450 mV supply the
        // Vt drop outweighs the mobility loss, so hot devices are mildly
        // *faster* — the well-known low-voltage regime behavior.
        let ion_gain = hot.ids(vdd, vdd) / cold.ids(vdd, vdd);
        assert!(
            ion_gain > 1.0 && ion_gain < 2.0,
            "near-threshold temperature inversion expected: {ion_gain:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "kelvin")]
    fn zero_temperature_panics() {
        let _ = sevennm_card(Polarity::N, VtFlavor::Hvt).at_temperature(0.0);
    }

    #[test]
    fn vt_eff_lowers_with_drain_bias() {
        let card = sevennm_card(Polarity::N, VtFlavor::Hvt);
        let low = card.vt_eff(Voltage::ZERO);
        let high = card.vt_eff(Voltage::from_volts(0.45));
        assert!(high < low);
        // Negative Vds must not *raise* the threshold.
        assert_eq!(card.vt_eff(Voltage::from_volts(-0.2)), card.vt);
    }
}
