//! Random process variation of the threshold voltage.
//!
//! The paper's yield requirement (`δ = 0.35 · Vdd`) comes from a Monte
//! Carlo analysis over device variation; Section 4 also sketches the
//! "accurate" statistical constraint `μ − kσ ≥ 0` on each margin. This
//! module provides the Vt sampling that both analyses need.
//!
//! The model is Pelgrom-like: the per-device random Vt shift is normal with
//! `σ(Vt) = σ_single / sqrt(fins)` — mismatch averages out over parallel
//! fins, which is exactly why FinFETs are more variation-immune than
//! planar devices at the same footprint.

use crate::{DeviceParams, FinFet};
use rand::Rng;
use sram_units::Voltage;

/// Describes the Vt-variation statistics of a device card.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Standard deviation of the random Vt shift for a single-fin device.
    pub sigma_single_fin: Voltage,
}

impl VariationModel {
    /// Builds the variation model recorded in a device card.
    #[must_use]
    pub fn from_params(params: &DeviceParams) -> Self {
        Self {
            sigma_single_fin: params.sigma_vt_single_fin,
        }
    }

    /// Standard deviation for a device with `fins` parallel fins.
    ///
    /// # Panics
    ///
    /// Panics if `fins` is zero.
    #[must_use]
    pub fn sigma(&self, fins: u32) -> Voltage {
        assert!(fins > 0, "fin count must be at least 1");
        self.sigma_single_fin / f64::from(fins).sqrt()
    }
}

/// Draws random Vt shifts for devices.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sram_device::{DeviceLibrary, FinFet, VtFlavor, VtSampler};
///
/// let lib = DeviceLibrary::sevennm();
/// let nominal = FinFet::new(lib.nfet(VtFlavor::Hvt).clone(), 1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let mut sampler = VtSampler::new(&mut rng);
/// let sample = sampler.perturb(&nominal);
/// assert_ne!(sample.vt_shift(), sram_units::Voltage::ZERO);
/// ```
#[derive(Debug)]
pub struct VtSampler<'r, R: Rng> {
    rng: &'r mut R,
}

impl<'r, R: Rng> VtSampler<'r, R> {
    /// Creates a sampler over the provided random-number generator.
    pub fn new(rng: &'r mut R) -> Self {
        Self { rng }
    }

    /// Draws a standard-normal variate via Box-Muller (keeps the `rand`
    /// dependency to the core trait, no `rand_distr` needed).
    fn standard_normal(&mut self) -> f64 {
        loop {
            let u1: f64 = self.rng.random();
            let u2: f64 = self.rng.random();
            if u1 > f64::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * core::f64::consts::PI * u2).cos();
            }
        }
    }

    /// Draws a random Vt shift for a device with the given variation model
    /// and fin count.
    pub fn sample_shift(&mut self, model: VariationModel, fins: u32) -> Voltage {
        model.sigma(fins) * self.standard_normal()
    }

    /// Returns a copy of `device` with a freshly sampled Vt shift applied.
    pub fn perturb(&mut self, device: &FinFet) -> FinFet {
        let model = VariationModel::from_params(device.params());
        let shift = self.sample_shift(model, device.fins());
        device.clone().with_vt_shift(shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::sevennm_card;
    use crate::{Polarity, VtFlavor};
    use rand::SeedableRng;

    #[test]
    fn sigma_shrinks_with_fins() {
        let m = VariationModel {
            sigma_single_fin: Voltage::from_millivolts(28.0),
        };
        assert!((m.sigma(4).millivolts() - 14.0).abs() < 1e-9);
        assert!(m.sigma(1) > m.sigma(2));
    }

    #[test]
    #[should_panic(expected = "fin count")]
    fn sigma_of_zero_fins_panics() {
        let m = VariationModel {
            sigma_single_fin: Voltage::from_millivolts(28.0),
        };
        let _ = m.sigma(0);
    }

    #[test]
    fn sample_statistics_match_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut sampler = VtSampler::new(&mut rng);
        let m = VariationModel {
            sigma_single_fin: Voltage::from_millivolts(28.0),
        };
        let n = 20_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| sampler.sample_shift(m, 1).millivolts())
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.6, "mean {mean} mV");
        assert!((var.sqrt() - 28.0).abs() < 1.0, "sigma {} mV", var.sqrt());
    }

    #[test]
    fn perturb_is_reproducible_with_seed() {
        let dev = FinFet::new(sevennm_card(Polarity::N, VtFlavor::Hvt), 1);
        let shift = |seed| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            VtSampler::new(&mut rng).perturb(&dev).vt_shift()
        };
        assert_eq!(shift(7), shift(7));
        assert_ne!(shift(7), shift(8));
    }
}
