//! Terminal capacitances of a device instance.

use sram_units::Capacitance;

/// Terminal capacitances of one FinFET instance (already scaled by its fin
/// count).
///
/// Table 1 of the paper composes interconnect loads out of these: e.g.
/// `C_BL = n_r (C_height + C_dn) + (N_pre + 1) C_dp + …`.
///
/// # Examples
///
/// ```
/// use sram_device::{DeviceLibrary, FinFet, VtFlavor};
///
/// let lib = DeviceLibrary::sevennm();
/// let pre = FinFet::new(lib.pfet(VtFlavor::Lvt).clone(), 7);
/// let caps = pre.capacitances();
/// assert!(caps.drain.farads() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCapacitances {
    /// Gate terminal capacitance.
    pub gate: Capacitance,
    /// Drain terminal capacitance (junction + fringe).
    pub drain: Capacitance,
    /// Source terminal capacitance (symmetric with the drain).
    pub source: Capacitance,
}

impl DeviceCapacitances {
    /// Sum of all terminal capacitances (useful as a crude self-load bound).
    #[must_use]
    pub fn total(&self) -> Capacitance {
        self.gate + self.drain + self.source
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_terminals() {
        let c = DeviceCapacitances {
            gate: Capacitance::from_attofarads(45.0),
            drain: Capacitance::from_attofarads(30.0),
            source: Capacitance::from_attofarads(30.0),
        };
        assert!((c.total().attofarads() - 105.0).abs() < 1e-9);
    }
}
