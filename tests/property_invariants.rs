//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;
use sram_edp::array::{ArrayModel, ArrayOrganization, ArrayParams, Periphery};
use sram_edp::cell::CellCharacterization;
use sram_edp::device::{DeviceLibrary, FinFet, VtFlavor};
use sram_edp::units::Voltage;

fn library() -> DeviceLibrary {
    DeviceLibrary::sevennm()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Device currents are monotone in Vgs for any bias in the modeled
    /// range, for all four cards.
    #[test]
    fn device_current_monotone_in_vgs(
        vgs1 in 0.0f64..0.9,
        dv in 0.001f64..0.3,
        vds in 0.01f64..0.9,
        hvt in any::<bool>(),
    ) {
        let lib = library();
        let flavor = if hvt { VtFlavor::Hvt } else { VtFlavor::Lvt };
        let dev = FinFet::new(lib.nfet(flavor).clone(), 1);
        let i1 = dev.ids(Voltage::from_volts(vgs1), Voltage::from_volts(vds));
        let i2 = dev.ids(Voltage::from_volts(vgs1 + dv), Voltage::from_volts(vds));
        prop_assert!(i2 >= i1, "Ids not monotone: {} -> {}", i1, i2);
    }

    /// Drain current scales exactly linearly with the fin count
    /// (width quantization).
    #[test]
    fn device_current_linear_in_fins(
        fins in 1u32..50,
        vgs in 0.0f64..0.8,
        vds in 0.0f64..0.8,
    ) {
        let lib = library();
        let one = FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), 1);
        let many = FinFet::new(lib.nfet(VtFlavor::Lvt).clone(), fins);
        let i1 = one.ids(Voltage::from_volts(vgs), Voltage::from_volts(vds)).amps();
        let im = many.ids(Voltage::from_volts(vgs), Voltage::from_volts(vds)).amps();
        prop_assert!((im - i1 * f64::from(fins)).abs() <= 1e-12 * im.abs().max(1e-18));
    }

    /// Array metrics are positive and internally consistent for any valid
    /// design point.
    #[test]
    fn array_metrics_are_consistent(
        rows_log2 in 1u32..11,
        n_pre in 1u32..51,
        n_wr in 1u32..21,
        vssc_steps in 0i32..25,
        hvt in any::<bool>(),
    ) {
        let lib = library();
        let rows = 1u32 << rows_log2;
        let org = ArrayOrganization::new(rows, 64, 64).unwrap();
        let cell = if hvt {
            CellCharacterization::paper_hvt(lib.nominal_vdd())
        } else {
            CellCharacterization::paper_lvt(lib.nominal_vdd())
        };
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let metrics = ArrayModel::new(org, &cell, &periphery, &params)
            .with_precharge_fins(n_pre)
            .with_write_fins(n_wr)
            .with_vssc(Voltage::from_millivolts(-10.0 * f64::from(vssc_steps)))
            .evaluate()
            .unwrap();

        prop_assert!(metrics.delay.seconds() > 0.0);
        prop_assert!(metrics.energy.joules() > 0.0);
        prop_assert_eq!(metrics.delay, metrics.read_delay.max(metrics.write_delay));
        // Eq. (5): total energy exceeds its leakage component.
        prop_assert!(metrics.energy >= metrics.leakage_energy);
        // Breakdown totals match the headline delays.
        prop_assert!(
            (metrics.read_breakdown.total().seconds() - metrics.read_delay.seconds()).abs()
                < 1e-18
        );
        prop_assert!(
            (metrics.write_breakdown.total().seconds() - metrics.write_delay.seconds()).abs()
                < 1e-18
        );
    }

    /// Deeper negative Gnd never slows the read bitline (the monotone
    /// mechanism the whole optimization leans on).
    #[test]
    fn bitline_delay_monotone_in_vssc(
        rows_log2 in 3u32..10,
        steps in 1i32..24,
    ) {
        let lib = library();
        let org = ArrayOrganization::new(1u32 << rows_log2, 64, 64).unwrap();
        let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        let eval = |vssc_mv: f64| {
            ArrayModel::new(org, &cell, &periphery, &params)
                .with_vssc(Voltage::from_millivolts(vssc_mv))
                .evaluate()
                .unwrap()
                .read_breakdown
                .bitline
        };
        let shallow = eval(-10.0 * f64::from(steps - 1));
        let deep = eval(-10.0 * f64::from(steps));
        prop_assert!(deep <= shallow);
    }

    /// Leakage energy scales exactly linearly with capacity at a fixed
    /// organization shape and delay (Eq. 4).
    #[test]
    fn leakage_energy_proportional_to_bits(scale_log2 in 0u32..4) {
        let lib = library();
        let cell = CellCharacterization::paper_lvt(lib.nominal_vdd());
        let periphery = Periphery::new(&lib);
        let params = ArrayParams::paper_defaults();
        // Same rows (same delay components on the BL), wider array.
        let base = ArrayOrganization::new(128, 64, 64).unwrap();
        let wide = ArrayOrganization::new(128, 64 << scale_log2, 64).unwrap();
        let m_base = ArrayModel::new(base, &cell, &periphery, &params).evaluate().unwrap();
        let m_wide = ArrayModel::new(wide, &cell, &periphery, &params).evaluate().unwrap();
        let expected = m_base.leakage_energy.joules()
            * f64::from(1u32 << scale_log2)
            * (m_wide.delay.seconds() / m_base.delay.seconds());
        prop_assert!((m_wide.leakage_energy.joules() - expected).abs() < 1e-6 * expected.abs());
    }
}
