//! The paper's headline claims, asserted in shape on the full (paper-
//! mode) optimizer.

use sram_edp::coopt::{CoOptimizationFramework, Method, OptimalDesign};
use sram_edp::device::VtFlavor;

fn optimize_all() -> Vec<OptimalDesign> {
    CoOptimizationFramework::paper_mode()
        .with_threads(8)
        .optimize_table4()
        .expect("table 4 optimization")
}

fn find(
    designs: &[OptimalDesign],
    bytes: usize,
    flavor: VtFlavor,
    method: Method,
) -> &OptimalDesign {
    designs
        .iter()
        .find(|d| d.capacity.bytes() == bytes && d.flavor == flavor && d.method == method)
        .expect("design computed")
}

#[test]
fn headline_hvt_m2_wins_edp_from_1kb_up() {
    let designs = optimize_all();
    for bytes in [1024usize, 4096, 16 * 1024] {
        let hvt = find(&designs, bytes, VtFlavor::Hvt, Method::M2);
        let lvt = find(&designs, bytes, VtFlavor::Lvt, Method::M2);
        let saving = 1.0 - hvt.edp() / lvt.edp();
        assert!(
            saving > 0.05,
            "at {bytes} B the EDP saving is only {:.1}%",
            saving * 100.0
        );
    }
    // ... and the saving grows with capacity (leakage dominance).
    let s = |bytes| {
        let hvt = find(&designs, bytes, VtFlavor::Hvt, Method::M2);
        let lvt = find(&designs, bytes, VtFlavor::Lvt, Method::M2);
        1.0 - hvt.edp() / lvt.edp()
    };
    assert!(s(16 * 1024) > s(4096));
    assert!(s(4096) > s(1024));
    // At 16 KB the paper reports 78%; our shape lands in that region.
    assert!(
        s(16 * 1024) > 0.5,
        "16 KB saving {:.1}% far below the paper's 78%",
        s(16 * 1024) * 100.0
    );
}

#[test]
fn headline_negative_gnd_recovers_hvt_delay() {
    // Paper: "BL delay and hence the total delay are significantly
    // reduced in 6T-HVT-M2 (on average 3.3x for BL delay and 1.8x for
    // total delay)".
    let designs = optimize_all();
    let mut bl_gains = Vec::new();
    let mut total_gains = Vec::new();
    for bytes in [128usize, 256, 1024, 4096, 16 * 1024] {
        let m1 = find(&designs, bytes, VtFlavor::Hvt, Method::M1);
        let m2 = find(&designs, bytes, VtFlavor::Hvt, Method::M2);
        bl_gains.push(m1.metrics.read_breakdown.bitline / m2.metrics.read_breakdown.bitline);
        total_gains.push(m1.delay() / m2.delay());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        avg(&bl_gains) > 1.5,
        "avg BL-delay gain {:.2}x (paper: 3.3x)",
        avg(&bl_gains)
    );
    assert!(
        avg(&total_gains) > 1.2,
        "avg total-delay gain {:.2}x (paper: 1.8x)",
        avg(&total_gains)
    );
}

#[test]
fn headline_m2_superset_dominates_m1() {
    // M2's search space strictly contains M1's (with per-technique rails
    // that are never worse), so M2 can never lose on the objective.
    let designs = optimize_all();
    for bytes in [128usize, 256, 1024, 4096, 16 * 1024] {
        for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
            let m1 = find(&designs, bytes, flavor, Method::M1);
            let m2 = find(&designs, bytes, flavor, Method::M2);
            assert!(
                m2.edp() <= m1.edp() * 1.0001,
                "{bytes} B {flavor}: M2 {} vs M1 {}",
                m2.edp(),
                m1.edp()
            );
        }
    }
}

#[test]
fn headline_energy_always_favors_hvt() {
    // Fig. 7(b): HVT arrays consume less energy at every capacity (the
    // 20x leakage gap), for both methods.
    let designs = optimize_all();
    for bytes in [1024usize, 4096, 16 * 1024] {
        for method in [Method::M1, Method::M2] {
            let hvt = find(&designs, bytes, VtFlavor::Hvt, method);
            let lvt = find(&designs, bytes, VtFlavor::Lvt, method);
            assert!(
                hvt.energy() < lvt.energy(),
                "{bytes} B {method}: HVT {} vs LVT {}",
                hvt.energy(),
                lvt.energy()
            );
        }
    }
}

#[test]
fn table4_voltages_match_paper_exactly_in_paper_mode() {
    let designs = optimize_all();
    for d in &designs {
        let (vddc, vwl) = match (d.flavor, d.method) {
            (VtFlavor::Lvt, Method::M1) => (640.0, 640.0),
            (VtFlavor::Lvt, Method::M2) => (640.0, 490.0),
            (VtFlavor::Hvt, Method::M1) => (550.0, 550.0),
            (VtFlavor::Hvt, Method::M2) => (550.0, 540.0),
        };
        assert_eq!(d.vddc.millivolts(), vddc, "{d}");
        assert_eq!(d.vwl.millivolts(), vwl, "{d}");
    }
}
