//! End-to-end integration: every layer of the stack exercised together,
//! from device cards through the circuit simulator to the optimizer.

use sram_edp::array::{ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery};
use sram_edp::cell::{
    AssistVoltages, CellCharacterization, CellCharacterizer, CharacterizationGrid,
};
use sram_edp::coopt::{CharacterizationMode, CoOptimizationFramework, DesignSpace, Method};
use sram_edp::device::{DeviceLibrary, VtFlavor};
use sram_edp::units::Voltage;

#[test]
fn full_simulated_stack_produces_a_design() {
    // The complete pipeline with *no* paper constants: simulate the cell,
    // build the LUTs, run the search. Coarse settings keep it fast.
    let mut fw =
        CoOptimizationFramework::new(DeviceLibrary::sevennm(), CharacterizationMode::Simulated)
            .with_space(DesignSpace::coarse())
            .with_threads(4);

    let design = fw
        .optimize(Capacity::from_bytes(1024), VtFlavor::Hvt, Method::M2)
        .expect("simulated-mode optimization succeeds");

    assert_eq!(design.capacity.bytes(), 1024);
    assert!(design.delay().picoseconds() > 1.0);
    assert!(design.energy().femtojoules() > 0.1);
    // The simulated rails land near the paper's (within the tolerance the
    // rail-minimization test established).
    assert!((design.vddc.millivolts() - 550.0).abs() <= 70.0);
    assert!((design.vwl.millivolts() - 540.0).abs() <= 50.0);
}

#[test]
fn simulated_and_paper_modes_agree_on_structure() {
    let space = DesignSpace::coarse();
    let mut paper = CoOptimizationFramework::paper_mode().with_space(space.clone());
    let mut simulated =
        CoOptimizationFramework::new(DeviceLibrary::sevennm(), CharacterizationMode::Simulated)
            .with_space(space);

    let c = Capacity::from_bytes(4096);
    let p = paper
        .optimize(c, VtFlavor::Hvt, Method::M2)
        .expect("paper mode");
    let s = simulated
        .optimize(c, VtFlavor::Hvt, Method::M2)
        .expect("simulated mode");

    // Both modes should pick deep negative Gnd and a tall-narrow array at
    // 4 KB (the Table 4 pattern), even though their absolute numbers
    // differ.
    assert!(
        p.vssc.millivolts() <= -100.0,
        "paper mode V_SSC = {}",
        p.vssc
    );
    assert!(
        s.vssc.millivolts() <= -100.0,
        "simulated V_SSC = {}",
        s.vssc
    );
    assert!(p.organization.rows() >= p.organization.cols());
    assert!(s.organization.rows() >= s.organization.cols());
}

#[test]
fn simulated_characterization_snapshot_is_consistent_with_direct_measurements() {
    let lib = DeviceLibrary::sevennm();
    let chr = CellCharacterizer::new(&lib, VtFlavor::Hvt).with_vtc_points(31);
    let vddc = Voltage::from_millivolts(550.0);
    let vwl = Voltage::from_millivolts(540.0);
    let grid = CharacterizationGrid::paper_default(vddc, vwl);
    let snapshot = CellCharacterization::characterize(&chr, &grid).expect("characterize");

    // LUT values must match a direct measurement at a grid point.
    let vssc = Voltage::from_millivolts(-240.0);
    let bias = AssistVoltages::nominal(lib.nominal_vdd())
        .with_vddc(vddc)
        .with_vssc(vssc);
    let direct = chr.read_current(&bias).expect("read current");
    let table = snapshot.read_current(vssc);
    let rel = (table.amps() - direct.amps()).abs() / direct.amps();
    assert!(
        rel < 0.02,
        "LUT vs direct I_read differ by {:.1}%",
        rel * 100.0
    );

    // And interpolation must be sandwiched by its neighbors.
    let mid = snapshot.read_current(Voltage::from_millivolts(-45.0));
    let lo = snapshot.read_current(Voltage::from_millivolts(-30.0));
    let hi = snapshot.read_current(Voltage::from_millivolts(-60.0));
    assert!(mid >= lo && mid <= hi);
}

#[test]
fn array_model_consumes_simulated_snapshot() {
    let lib = DeviceLibrary::sevennm();
    let chr = CellCharacterizer::new(&lib, VtFlavor::Lvt).with_vtc_points(21);
    let grid = CharacterizationGrid {
        vddc: Voltage::from_millivolts(640.0),
        vwl: Voltage::from_millivolts(490.0),
        vssc_values: vec![Voltage::ZERO, Voltage::from_millivolts(-120.0)],
        vwl_values: vec![
            Voltage::from_millivolts(450.0),
            Voltage::from_millivolts(490.0),
        ],
    };
    let cell = CellCharacterization::characterize(&chr, &grid).expect("characterize");
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let org = ArrayOrganization::new(128, 64, 64).expect("org");
    let metrics = ArrayModel::new(org, &cell, &periphery, &params)
        .with_precharge_fins(10)
        .with_vssc(Voltage::from_millivolts(-120.0))
        .evaluate()
        .expect("evaluate");
    assert!(metrics.delay.picoseconds() > 1.0);
    assert!(metrics.energy.joules() > 0.0);
    assert!(metrics.leakage_energy < metrics.energy);
}
