//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use.
//!
//! The build environment has no registry access (see `vendor/README.md`),
//! so `cargo bench` runs through this minimal harness instead: it warms
//! each benchmark up once, then reports min / mean / max wall-clock over
//! up to `sample_size` iterations bounded by a per-benchmark time budget.
//! No statistics, plots, or baselines — just honest timings on stdout.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped between measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One fresh input per measured iteration.
    PerIteration,
    /// Small inputs (ignored by this harness; measured per iteration).
    SmallInput,
    /// Large inputs (ignored by this harness; measured per iteration).
    LargeInput,
}

/// Per-iteration timer handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    time_budget: Duration,
}

impl Bencher {
    fn new(sample_size: usize, time_budget: Duration) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
            time_budget,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Measures `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warm-up (untimed).
        std::hint::black_box(routine(setup()));
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.time_budget {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("nonempty");
        let max = self.samples.iter().max().expect("nonempty");
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{name:<40} {:>12} {:>12} {:>12}  ({} samples)",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
            self.samples.len(),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::new(self.sample_size, self.criterion.time_budget);
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Ends the group (prints a separating blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness.
#[derive(Debug)]
pub struct Criterion {
    time_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            time_budget: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!(
            "{:<40} {:>12} {:>12} {:>12}",
            format!("[{name}]"),
            "min",
            "mean",
            "max"
        );
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into();
        let mut bencher = Bencher::new(100, self.time_budget);
        f(&mut bencher);
        bencher.report(&label);
        self
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Groups benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(5, Duration::from_secs(1));
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert!(b.samples.len() <= 5 && !b.samples.is_empty());
        // One warm-up call plus one per sample.
        assert_eq!(calls, b.samples.len() as u32 + 1);
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 us");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
