//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses (`Rng::random`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`).
//!
//! The build environment has no registry access, so the workspace vendors
//! the tiny API surface it needs instead of the full ecosystem crate (see
//! `vendor/README.md`). The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, seedable, and statistically far better
//! than the workspace's Monte Carlo loops require. It is **not** the same
//! stream as the real `StdRng` (ChaCha12) and is not cryptographically
//! secure; nothing in this workspace depends on either property (all
//! tests compare run-to-run reproducibility, never absolute draws).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Types which can be drawn uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A random-number generator.
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value (`f64`/`f32` in `[0, 1)`,
    /// integers over their full range).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn reproducible_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let trues = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}
