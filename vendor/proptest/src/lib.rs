//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the proptest API its property tests rely on (see
//! `vendor/README.md`): the [`proptest!`] macro, range and collection
//! strategies, [`Just`], [`prop_oneof!`], `any::<bool>()`, and the
//! `prop_assert*` macros.
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic cases
//! (seeded from the test name, overridable via `PROPTEST_CASES`). There
//! is **no shrinking** — on failure the offending inputs are printed
//! as-is, which for the workspace's numeric strategies is adequate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategies for generating values.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            let u: f64 = rng.random();
            self.start + u * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty f32 range strategy");
            let u: f32 = rng.random();
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = self.end.abs_diff(self.start);
                    // Span fits in u64 for every integer type we expose.
                    let offset = rng.next_u64() % u64::from(span);
                    self.start.wrapping_add(offset as $t)
                }
            }
        )*};
    }
    int_range_strategy!(i8, i16, i32, u8, u16, u32);

    macro_rules! wide_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = self.end.abs_diff(self.start) as u64;
                    let offset = rng.next_u64() % span;
                    self.start.wrapping_add(offset as $t)
                }
            }
        )*};
    }
    wide_int_range_strategy!(i64, u64, isize, usize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for bool {
        type Strategy = Any<bool>;
        fn arbitrary() -> Any<bool> {
            Any(std::marker::PhantomData)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` etc.).
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Uniform choice between several strategies of the same value type —
    /// the engine behind [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let k = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[k].sample(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for
    /// [`prop_oneof!`](crate::prop_oneof)).
    #[must_use]
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// A length specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, 3)` or `vec(element, 1..8)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The per-test runner driving the case loop (used by the [`proptest!`]
/// expansion; not part of the public proptest API surface).
pub mod test_runner {
    use crate::prelude::ProptestConfig;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Drives the deterministic case loop of one property test.
    #[derive(Debug)]
    pub struct TestRunner {
        rng: TestRng,
        cases: u32,
    }

    impl TestRunner {
        /// Creates a runner seeded from the test name.
        #[must_use]
        pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed ^= u64::from(b);
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            Self {
                rng: TestRng::seed_from_u64(seed),
                cases,
            }
        }

        /// Number of cases to run.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The case RNG.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::prelude::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), runner.rng());)+
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $(let $arg = $arg.clone();)+
                        $body
                    }));
                    if let Err(panic) = outcome {
                        eprintln!(
                            concat!(
                                "proptest case {} of {} failed in `{}` with inputs:",
                                $(concat!("\n  ", stringify!($arg), " = {:?}"),)+
                            ),
                            case + 1,
                            runner.cases(),
                            stringify!($name),
                            $($arg),+
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the rest of the case when the assumption fails. Without
/// shrinking there is nothing to roll back, so this simply returns.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniformly picks one of several strategies (all yielding the same
/// type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1.5f64..2.5, n in 3u32..7, k in -5i32..-1) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!((-5..-1).contains(&k));
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn oneof_picks_only_listed(x in prop_oneof![Just(1usize), Just(4)]) {
            prop_assert!(x == 1 || x == 4);
        }

        #[test]
        fn any_bool_hits_both(b in any::<bool>(), pad in 0u32..10) {
            // Not a distribution test; just exercise the strategies.
            let _ = (b, pad);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let cfg = ProptestConfig::with_cases(8);
        let mut a = crate::test_runner::TestRunner::new(&cfg, "seed_test");
        let mut b = crate::test_runner::TestRunner::new(&cfg, "seed_test");
        for _ in 0..8 {
            let x = (0.0f64..1.0).sample(a.rng());
            let y = (0.0f64..1.0).sample(b.rng());
            assert_eq!(x, y);
        }
    }
}
