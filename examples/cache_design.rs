//! Cache-hierarchy sizing scenario: pick an SRAM organization for each
//! level of a small embedded cache hierarchy, trading the HVT energy
//! advantage against its delay penalty per level.
//!
//! The paper's intro motivates exactly this: large on-chip SRAM arrays
//! dominated by leakage (lower levels) versus small latency-critical
//! arrays (L0/L1), evaluated here with the EDP, ED²P and delay-only
//! objectives.
//!
//! ```sh
//! cargo run --release --example cache_design
//! ```

use sram_edp::array::Capacity;
use sram_edp::coopt::{
    CoOptimizationFramework, CooptError, DelayOnly, EnergyDelayProduct, EnergyDelaySquared, Method,
    Objective,
};
use sram_edp::device::VtFlavor;

struct CacheLevel {
    name: &'static str,
    capacity: Capacity,
    objective: &'static str,
}

fn main() -> Result<(), CooptError> {
    let mut framework = CoOptimizationFramework::paper_mode().with_threads(4);

    let levels = [
        CacheLevel {
            name: "L0 scratch  ",
            capacity: Capacity::from_bytes(256),
            objective: "delay",
        },
        CacheLevel {
            name: "L1 data bank",
            capacity: Capacity::from_bytes(4096),
            objective: "ed2p",
        },
        CacheLevel {
            name: "L2 tile bank",
            capacity: Capacity::from_bytes(16 * 1024),
            objective: "edp",
        },
    ];

    println!(
        "Per-level SRAM bank design (best of LVT/HVT x M1/M2 under each level's objective):\n"
    );
    for level in &levels {
        let mut best = None;
        for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
            for method in [Method::M1, Method::M2] {
                let design = match level.objective {
                    "delay" => {
                        framework.optimize_with(level.capacity, flavor, method, &DelayOnly)?
                    }
                    "ed2p" => framework.optimize_with(
                        level.capacity,
                        flavor,
                        method,
                        &EnergyDelaySquared,
                    )?,
                    _ => framework.optimize_with(
                        level.capacity,
                        flavor,
                        method,
                        &EnergyDelayProduct,
                    )?,
                };
                let score = match level.objective {
                    "delay" => DelayOnly.score(&design.metrics),
                    "ed2p" => EnergyDelaySquared.score(&design.metrics),
                    _ => EnergyDelayProduct.score(&design.metrics),
                };
                let replace = match &best {
                    None => true,
                    Some((s, _)) => score < *s,
                };
                if replace {
                    best = Some((score, design));
                }
            }
        }
        let (_, design) = best.expect("at least one config evaluated");
        println!(
            "{} ({:>6}, objective: {:>5}) -> {:<9} {:>9} org, N_pre={:<2} N_wr={:<2} V_SSC={:>8}  D={} E={}",
            level.name,
            level.capacity.to_string(),
            level.objective,
            design.label(),
            design.organization.to_string(),
            design.n_pre,
            design.n_wr,
            design.vssc.to_string(),
            design.delay(),
            design.energy(),
        );
    }

    println!("\nObservations (matching the paper's narrative):");
    println!("  - latency-critical small banks stay LVT;");
    println!("  - leakage-dominated large banks flip to HVT with negative-Gnd assist.");
    Ok(())
}
