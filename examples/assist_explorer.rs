//! Assist-technique explorer: sweep the read/write assist voltages on a
//! simulated 6T-HVT cell and print the margin/performance trade-offs —
//! the interactive version of the paper's Figs. 3 and 5.
//!
//! Everything here is *measured* by the built-in circuit simulator; no
//! paper constants are used.
//!
//! ```sh
//! cargo run --release --example assist_explorer
//! ```

use sram_edp::cell::{AssistVoltages, CellCharacterizer, CellError};
use sram_edp::device::{DeviceLibrary, VtFlavor};
use sram_edp::units::Voltage;

fn main() -> Result<(), CellError> {
    let library = DeviceLibrary::sevennm();
    let vdd = library.nominal_vdd();
    let delta = vdd * 0.35;
    let chr = CellCharacterizer::new(&library, VtFlavor::Hvt).with_vtc_points(41);

    println!("6T-HVT cell at Vdd = {vdd}, yield floor delta = {delta}\n");

    let nominal = AssistVoltages::nominal(vdd);
    println!(
        "no assists: HSNM = {}, RSNM = {}, WM = {}, I_read = {}",
        chr.hold_snm(&nominal)?,
        chr.read_snm(&nominal)?,
        chr.write_margin(&nominal)?,
        chr.read_current(&nominal)?,
    );

    println!("\nVdd boost (read stability):");
    println!("{:>10} {:>12} {:>8}", "V_DDC", "RSNM", "yield");
    for mv in (450..=650).step_by(50) {
        let bias = nominal.with_vddc(Voltage::from_millivolts(f64::from(mv)));
        let rsnm = chr.read_snm(&bias)?;
        println!(
            "{:>10} {:>12} {:>8}",
            bias.vddc.to_string(),
            rsnm.to_string(),
            if rsnm >= delta { "pass" } else { "fail" }
        );
    }

    println!("\nnegative Gnd (read current), at V_DDC = 550 mV:");
    println!("{:>10} {:>12} {:>10}", "V_SSC", "I_read", "gain");
    let boosted = nominal.with_vddc(Voltage::from_millivolts(550.0));
    let i0 = chr.read_current(&boosted)?;
    for k in 0..=4 {
        let bias = boosted.with_vssc(Voltage::from_millivolts(-60.0 * f64::from(k)));
        let i = chr.read_current(&bias)?;
        println!(
            "{:>10} {:>12} {:>9.2}x",
            bias.vssc.to_string(),
            i.to_string(),
            i / i0
        );
    }

    println!("\nwordline overdrive (writability):");
    println!(
        "{:>10} {:>12} {:>14} {:>8}",
        "V_WL", "WM", "write delay", "yield"
    );
    for mv in (450..=630).step_by(45) {
        let bias = nominal.with_vwl(Voltage::from_millivolts(f64::from(mv)));
        let wm = chr.write_margin(&bias)?;
        let wd = chr.write_delay(&bias)?;
        println!(
            "{:>10} {:>12} {:>14} {:>8}",
            bias.vwl.to_string(),
            wm.to_string(),
            wd.to_string(),
            if wm >= delta { "pass" } else { "fail" }
        );
    }

    println!(
        "\n(The paper adopts Vdd boost + negative Gnd for reads and WL overdrive for writes.)"
    );
    Ok(())
}
