//! Dynamic-voltage-scaling study: re-run the whole co-optimization at
//! several supply voltages, in **full simulation mode** (rail
//! minimization, cell characterization and search all re-derived per
//! supply — no paper constants).
//!
//! This extends the paper's Fig. 2 discussion: as `Vdd` scales down,
//! leakage shrinks but margins collapse and the assists must work
//! harder. The printout shows where each flavor stops being viable and
//! what the EDP optimum costs at each supply.
//!
//! ```sh
//! cargo run --release --example voltage_scaling
//! ```

use sram_edp::array::Capacity;
use sram_edp::coopt::{CharacterizationMode, CoOptimizationFramework, DesignSpace, Method};
use sram_edp::device::{DeviceLibrary, VtFlavor};
use sram_edp::units::Voltage;

fn main() {
    let capacity = Capacity::from_bytes(1024);
    println!("DVS study: 1 KB array, simulated characterization, coarse search\n");
    println!(
        "{:>8} {:>8} {:>10} {:>10} {:>12} {:>12} {:>16}",
        "Vdd[mV]", "flavor", "V_DDC[mV]", "V_WL[mV]", "delay", "energy", "EDP [1e-27 J*s]"
    );

    for vdd_mv in [400.0, 450.0, 500.0] {
        for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
            let mut fw = CoOptimizationFramework::new(
                DeviceLibrary::sevennm(),
                CharacterizationMode::Simulated,
            )
            .with_supply(Voltage::from_millivolts(vdd_mv))
            .with_space(DesignSpace::coarse())
            .with_threads(4);

            match fw.optimize(capacity, flavor, Method::M2) {
                Ok(d) => println!(
                    "{:>8.0} {:>8} {:>10.0} {:>10.0} {:>12} {:>12} {:>16.2}",
                    vdd_mv,
                    flavor.to_string(),
                    d.vddc.millivolts(),
                    d.vwl.millivolts(),
                    d.delay().to_string(),
                    d.energy().to_string(),
                    d.edp().joule_seconds() * 1e27,
                ),
                Err(e) => println!(
                    "{:>8.0} {:>8} {:>10} {:>10} {:>12} {:>12} {:>16}",
                    vdd_mv,
                    flavor.to_string(),
                    "-",
                    "-",
                    "infeasible",
                    "-",
                    e.to_string().chars().take(14).collect::<String>(),
                ),
            }
        }
    }

    println!("\n(Each row re-derives the yield-minimum rails by simulation at that supply.)");
}
