//! Banked-macro design: split a 16 KB memory into banks, co-optimizing
//! each bank's array with the paper's framework and layering the banking
//! overheads (bank decoder, idle-bank leakage) on top.
//!
//! The paper treats each capacity as one monolithic array; this example
//! shows how much headroom partitioning leaves, and where it saturates.
//!
//! ```sh
//! cargo run --release --example banked_macro
//! ```

use sram_edp::array::{ArrayParams, Capacity, Periphery};
use sram_edp::cell::CellCharacterization;
use sram_edp::coopt::{
    evaluate_bank_count, optimize_banked, CooptError, DesignSpace, YieldConstraint,
};
use sram_edp::device::DeviceLibrary;

fn main() -> Result<(), CooptError> {
    let lib = DeviceLibrary::sevennm();
    let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
    let periphery = Periphery::new(&lib);
    let params = ArrayParams::paper_defaults();
    let space = DesignSpace::paper_default().with_strides(3, 2);
    let constraint = YieldConstraint::paper_delta(lib.nominal_vdd());
    let capacity = Capacity::from_bytes(16 * 1024);

    println!("16 KB 6T-HVT macro, bank-count sweep:\n");
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>12} {:>16}",
        "banks", "per-bank", "bank org", "delay", "energy", "EDP [1e-27 J*s]"
    );
    for bank_bits in 0..=3 {
        let d = evaluate_bank_count(
            capacity, bank_bits, &cell, &periphery, &params, &space, constraint, 64,
        )?;
        println!(
            "{:>6} {:>9} {:>12} {:>12} {:>12} {:>16.2}",
            d.banks(),
            d.bank.capacity.to_string(),
            format!(
                "{}x{}",
                d.bank.organization.rows(),
                d.bank.organization.cols()
            ),
            d.delay.to_string(),
            d.energy.to_string(),
            d.edp().joule_seconds() * 1e27,
        );
    }

    let best = optimize_banked(
        capacity, &cell, &periphery, &params, &space, constraint, 64, 3,
    )?;
    println!(
        "\nEDP-optimal partitioning: {} banks of {} ({} per bank, V_SSC = {})",
        best.banks(),
        best.bank.capacity,
        best.bank.organization,
        best.bank.vssc,
    );
    println!(
        "note: leakage *power* is banking-invariant (all bits leak); the win is cycle time\n\
         and per-access switching energy — see EXPERIMENTS.md (A6)."
    );
    Ok(())
}
