//! Monte Carlo yield analysis of a chosen design point — the paper's
//! "accurate" statistical constraint `min over margins (μ − kσ) ≥ 0`.
//!
//! Samples 6T-HVT cells with random per-transistor Vt variation, measures
//! all three margins of each by circuit simulation (with assists applied
//! per operation, as the array does), and reports the μ − kσ yield for
//! k = 1…6.
//!
//! ```sh
//! cargo run --release --example yield_margin
//! ```

use sram_edp::cell::{
    AssistVoltages, CellCharacterizer, CellError, MonteCarloConfig, YieldAnalyzer,
};
use sram_edp::device::{DeviceLibrary, VtFlavor};
use sram_edp::units::Voltage;

fn main() -> Result<(), CellError> {
    let library = DeviceLibrary::sevennm();
    let vdd = library.nominal_vdd();

    // The HVT-M2 operating point from the optimizer: V_DDC/V_WL at their
    // yield minimums, deep negative Gnd during reads.
    let bias = AssistVoltages::nominal(vdd)
        .with_vddc(Voltage::from_millivolts(550.0))
        .with_vssc(Voltage::from_millivolts(-240.0))
        .with_vwl(Voltage::from_millivolts(540.0));

    let samples = 100;
    println!("Monte Carlo yield at the HVT-M2 operating point ({samples} samples)...\n");

    let analyzer = YieldAnalyzer::new(
        CellCharacterizer::new(&library, VtFlavor::Hvt),
        MonteCarloConfig {
            samples,
            seed: 2016,
            vtc_points: 25,
        },
    );
    let analysis = analyzer.run(&bias)?;

    for stats in [&analysis.hsnm, &analysis.rsnm, &analysis.wm] {
        println!(
            "{:>4}: mean = {:>11}, sigma = {:>10}, worst sample = {:>11}",
            stats.kind.to_string(),
            stats.mean.to_string(),
            stats.sigma.to_string(),
            stats.worst.to_string(),
        );
    }

    println!("\nstatistical yield (paper Section 4: min over margins of mu - k*sigma >= 0):");
    for k in 1..=6 {
        let k = f64::from(k);
        println!(
            "  k = {k:.0}: min(mu - k*sigma) = {:>11}  ->  {}",
            analysis.worst_statistical_margin(k).to_string(),
            if analysis.passes(k) { "pass" } else { "FAIL" }
        );
    }
    Ok(())
}
