//! Workload-aware tuning: derive the paper's α/β from synthetic access
//! traces and watch the optimal design shift with the workload.
//!
//! The paper fixes `α = β = 0.5`; a real integration knows its traffic.
//! This example generates three synthetic workloads (idle-heavy sensor
//! buffer, read-heavy instruction cache, write-heavy log buffer),
//! extracts each trace's α/β, re-runs the co-optimization with those
//! parameters, and validates Eq. (5)'s blended energy against the exact
//! per-trace accounting.
//!
//! ```sh
//! cargo run --release --example workload_tuning
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sram_edp::array::{
    Access, AccessTrace, ArrayModel, ArrayOrganization, ArrayParams, Capacity, Periphery,
};
use sram_edp::cell::CellCharacterization;
use sram_edp::coopt::{CoOptimizationFramework, CooptError, Method};
use sram_edp::device::{DeviceLibrary, VtFlavor};

/// Bernoulli trace generator: each cycle accesses with probability
/// `p_access` and reads (given an access) with probability `p_read`.
fn random_trace(cycles: usize, p_access: f64, p_read: f64, seed: u64) -> AccessTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..cycles)
        .map(|_| {
            if rng.random::<f64>() < p_access {
                if rng.random::<f64>() < p_read {
                    Access::Read
                } else {
                    Access::Write
                }
            } else {
                Access::Idle
            }
        })
        .collect()
}

fn main() -> Result<(), CooptError> {
    let workloads = [
        (
            "sensor buffer (idle-heavy) ",
            random_trace(20_000, 0.05, 0.5, 1),
        ),
        (
            "instruction cache (reads)  ",
            random_trace(20_000, 0.9, 0.97, 2),
        ),
        (
            "log buffer (write-heavy)   ",
            random_trace(20_000, 0.7, 0.1, 3),
        ),
    ];

    println!("Workload-aware co-optimization of a 4 KB HVT-M2 array:\n");
    println!(
        "{:<28} {:>6} {:>6} {:>10} {:>7} {:>6} {:>12} {:>12}",
        "workload", "alpha", "beta", "org", "N_pre", "N_wr", "E/access", "avg power"
    );

    for (name, trace) in &workloads {
        let params = trace.to_params(&ArrayParams::paper_defaults());
        let mut fw = CoOptimizationFramework::paper_mode()
            .with_params(params)
            .with_threads(4);
        let design = fw.optimize(Capacity::from_bytes(4096), VtFlavor::Hvt, Method::M2)?;
        println!(
            "{:<28} {:>6.3} {:>6.3} {:>10} {:>7} {:>6} {:>12} {:>12}",
            name,
            trace.activity_factor(),
            trace.read_ratio(),
            design.organization.to_string(),
            design.n_pre,
            design.n_wr,
            design.energy().to_string(),
            trace.average_power(&design.metrics).to_string(),
        );
    }

    // Validate the blend: Eq. (5) with trace-derived alpha/beta equals the
    // exact per-trace accounting.
    let lib = DeviceLibrary::sevennm();
    let cell = CellCharacterization::paper_hvt(lib.nominal_vdd());
    let periphery = Periphery::new(&lib);
    let trace = &workloads[1].1;
    let params = trace.to_params(&ArrayParams::paper_defaults());
    let metrics = ArrayModel::new(
        ArrayOrganization::new(128, 64, 64).expect("valid organization"),
        &cell,
        &periphery,
        &params,
    )
    .with_precharge_fins(12)
    .evaluate()
    .expect("model evaluates");
    let per_cycle = trace.energy(&metrics) / trace.cycles() as f64;
    println!(
        "\nEq. (5) blended energy/cycle {} vs exact trace accounting {} (match: {})",
        metrics.energy,
        per_cycle,
        (per_cycle.joules() - metrics.energy.joules()).abs() < 1e-9 * metrics.energy.joules(),
    );
    Ok(())
}
