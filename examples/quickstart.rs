//! Quickstart: optimize one 4 KB SRAM array and inspect the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sram_edp::array::Capacity;
use sram_edp::coopt::{CoOptimizationFramework, CooptError, Method};
use sram_edp::device::VtFlavor;

fn main() -> Result<(), CooptError> {
    // The framework in paper-model mode: cell look-up tables built from
    // the constants the DAC'16 paper publishes. Use
    // `CoOptimizationFramework::simulated_mode()` to characterize the
    // cell with the built-in circuit simulator instead (slower).
    let mut framework = CoOptimizationFramework::paper_mode().with_threads(4);

    let capacity = Capacity::from_bytes(4096);

    println!("Optimizing a {capacity} SRAM array for minimum energy-delay product...\n");

    for flavor in [VtFlavor::Lvt, VtFlavor::Hvt] {
        for method in [Method::M1, Method::M2] {
            let design = framework.optimize(capacity, flavor, method)?;
            println!("{design}");
        }
    }

    let lvt = framework.optimize(capacity, VtFlavor::Lvt, Method::M2)?;
    let hvt = framework.optimize(capacity, VtFlavor::Hvt, Method::M2)?;
    println!(
        "\nHVT-M2 vs LVT-M2: {:.1}% lower EDP at a {:.1}% delay penalty",
        (1.0 - hvt.edp() / lvt.edp()) * 100.0,
        (hvt.delay() / lvt.delay() - 1.0) * 100.0,
    );
    println!(
        "winning HVT-M2 knobs: {} organization, N_pre = {}, N_wr = {}, V_SSC = {}",
        hvt.organization, hvt.n_pre, hvt.n_wr, hvt.vssc,
    );
    Ok(())
}
